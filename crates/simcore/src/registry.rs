//! Run-scoped metrics registry: counters, gauges, and sample sets keyed
//! by metric name plus a free-form label (job id, hostname, "" for
//! global), folded into the machine-readable reports as JSON.
//!
//! Naming scheme (`DESIGN.md` §12): dot-separated subsystem-first names
//! (`broker.grants`, `alloc.latency_s`, `queue.depth`), `_s` suffix for
//! second-valued samples. Labels pick the keying dimension the metric is
//! *about*: job ids for allocation metrics, hostnames for machine
//! metrics.
//!
//! Sample sets reduce to [`Summary`] quantiles at export time and also
//! bucketize through [`Histogram`] so the JSON shows distribution shape,
//! not just order statistics. `BTreeMap` keys keep the export
//! deterministic.

use crate::json::Json;
use crate::metrics::{Histogram, Summary};
use std::collections::BTreeMap;
use std::fmt;

type Key = (&'static str, String);

/// Counters, gauges, and histogram samples for one run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    samples: BTreeMap<Key, Vec<f64>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a counter (creating it at zero).
    pub fn add(&mut self, name: &'static str, label: impl fmt::Display, n: u64) {
        *self.counters.entry((name, label.to_string())).or_insert(0) += n;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &'static str, label: impl fmt::Display) {
        self.add(name, label, 1);
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &'static str, label: impl fmt::Display, value: f64) {
        self.gauges.insert((name, label.to_string()), value);
    }

    /// Record one sample into a distribution (NaN samples are dropped —
    /// [`Summary`] rejects them).
    pub fn observe(&mut self, name: &'static str, label: impl fmt::Display, value: f64) {
        if value.is_nan() {
            return;
        }
        self.samples
            .entry((name, label.to_string()))
            .or_default()
            .push(value);
    }

    pub fn counter(&self, name: &'static str, label: &str) -> u64 {
        self.counters
            .get(&(name, label.to_string()))
            .copied()
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &'static str, label: &str) -> Option<f64> {
        self.gauges.get(&(name, label.to_string())).copied()
    }

    /// Reduce one sample set to a [`Summary`] (None if never observed).
    pub fn summary(&self, name: &'static str, label: &str) -> Option<Summary> {
        self.samples
            .get(&(name, label.to_string()))
            .map(|v| Summary::from_samples(v.clone()))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.samples.is_empty()
    }

    /// Fold another registry into this one — the cross-shard merge:
    /// counters add, gauges take the other side's latest value, and
    /// histogram sample sets concatenate (so merged quantiles are
    /// computed over the union of observations, not averaged summaries —
    /// averaging percentiles is the classic aggregation bug this method
    /// exists to avoid).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for ((name, label), v) in &other.counters {
            *self.counters.entry((name, label.clone())).or_insert(0) += v;
        }
        for ((name, label), v) in &other.gauges {
            self.gauges.insert((name, label.clone()), *v);
        }
        for ((name, label), samples) in &other.samples {
            self.samples
                .entry((name, label.clone()))
                .or_default()
                .extend_from_slice(samples);
        }
    }

    /// Export everything as a JSON document:
    ///
    /// ```json
    /// {
    ///   "counters":   [{"name": "...", "label": "...", "value": 3}, …],
    ///   "gauges":     [{"name": "...", "label": "...", "value": 0.5}, …],
    ///   "histograms": [{"name": "...", "label": "...", "count": 4,
    ///                   "min": …, "p50": …, "p90": …, "p99": …, "max": …,
    ///                   "mean": …, "buckets": [n, …], "bucket_lo": …,
    ///                   "bucket_width": …, "outliers": n}, …]
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|((name, label), v)| entry(name, label).set("value", *v))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|((name, label), v)| entry(name, label).set("value", *v))
            .collect();
        let histograms = self
            .samples
            .iter()
            .map(|((name, label), samples)| {
                let s = Summary::from_samples(samples.clone());
                let mut doc = entry(name, label)
                    .set("count", samples.len())
                    .set("min", s.min())
                    .set("p50", s.percentile(50.0))
                    .set("p90", s.percentile(90.0))
                    .set("p99", s.percentile(99.0))
                    .set("p999", s.p999())
                    .set("max", s.max())
                    .set("mean", s.mean());
                // Bucketize over the observed range so the export shows
                // shape; degenerate ranges collapse to one bucket.
                let (lo, hi) = (s.min(), s.max());
                if lo.is_finite() && hi.is_finite() {
                    let width = ((hi - lo) / 8.0).max(f64::EPSILON);
                    let mut h = Histogram::new(lo, width, 8);
                    for &v in samples {
                        h.add(v);
                    }
                    doc = doc
                        .set("bucket_lo", lo)
                        .set("bucket_width", width)
                        .set(
                            "buckets",
                            Json::Arr(h.bucket_counts().iter().map(|&n| Json::from(n)).collect()),
                        )
                        .set("outliers", h.outliers());
                }
                doc
            })
            .collect();
        Json::obj()
            .set("counters", Json::Arr(counters))
            .set("gauges", Json::Arr(gauges))
            .set("histograms", Json::Arr(histograms))
    }
}

fn entry(name: &str, label: &str) -> Json {
    Json::obj().set("name", name).set("label", label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let mut m = MetricsRegistry::new();
        m.inc("broker.grants", "j1");
        m.inc("broker.grants", "j1");
        m.inc("broker.grants", "j2");
        m.add("broker.grants", "j2", 3);
        assert_eq!(m.counter("broker.grants", "j1"), 2);
        assert_eq!(m.counter("broker.grants", "j2"), 4);
        assert_eq!(m.counter("broker.grants", "j3"), 0);
        assert_eq!(m.counter("broker.denies", "j1"), 0);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("queue.depth", "", 3.0);
        m.gauge_set("queue.depth", "", 5.0);
        assert_eq!(m.gauge("queue.depth", ""), Some(5.0));
        assert_eq!(m.gauge("queue.depth", "x"), None);
    }

    #[test]
    fn observations_reduce_to_summaries() {
        let mut m = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.observe("alloc.latency_s", "j1", v);
        }
        m.observe("alloc.latency_s", "j1", f64::NAN); // dropped
        let s = m.summary("alloc.latency_s", "j1").unwrap();
        assert_eq!(s.count(), 4);
        assert_eq!(s.median(), 2.5);
        assert!(m.summary("alloc.latency_s", "j2").is_none());
    }

    #[test]
    fn json_export_is_deterministic_and_complete() {
        let mut m = MetricsRegistry::new();
        m.inc("b.z", "l");
        m.inc("a.x", "l");
        m.gauge_set("g", "n01", 0.5);
        for v in [1.0, 9.0] {
            m.observe("h", "", v);
        }
        let doc = m.to_json();
        let counters = doc.get("counters").unwrap().as_arr().unwrap();
        // BTreeMap ordering: a.x before b.z.
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("a.x"));
        assert_eq!(counters[1].get("name").unwrap().as_str(), Some("b.z"));
        let hist = &doc.get("histograms").unwrap().as_arr().unwrap()[0];
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(hist.get("p50").and_then(Json::as_f64), Some(5.0));
        let buckets = hist.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 8);
        // Round-trips through the parser.
        let back = crate::json::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn merge_adds_counters_overwrites_gauges_and_pools_samples() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("shard.dispatched", "0", 10);
        b.add("shard.dispatched", "0", 5);
        b.add("shard.dispatched", "1", 7);
        a.gauge_set("queue.depth", "", 3.0);
        b.gauge_set("queue.depth", "", 9.0);
        for v in [1.0, 2.0] {
            a.observe("alloc.latency_s", "j1", v);
        }
        for v in [3.0, 4.0] {
            b.observe("alloc.latency_s", "j1", v);
        }
        a.merge(&b);
        assert_eq!(a.counter("shard.dispatched", "0"), 15);
        assert_eq!(a.counter("shard.dispatched", "1"), 7);
        assert_eq!(a.gauge("queue.depth", ""), Some(9.0));
        // Merged quantiles come from the pooled samples: the median of
        // {1,2,3,4} is 2.5 — NOT the mean of per-shard medians computed
        // on summaries (which would also be 2.5 here, so pin the count
        // and an asymmetric percentile as well).
        let s = a.summary("alloc.latency_s", "j1").unwrap();
        assert_eq!(s.count(), 4);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.percentile(100.0), 4.0);
        // Merging into an empty registry is a copy.
        let mut fresh = MetricsRegistry::new();
        fresh.merge(&a);
        assert_eq!(fresh.counter("shard.dispatched", "0"), 15);
        assert_eq!(fresh.summary("alloc.latency_s", "j1").unwrap().count(), 4);
    }

    #[test]
    fn histogram_export_includes_p999() {
        let mut m = MetricsRegistry::new();
        for v in 0..=1000 {
            m.observe("prof.dispatch_us", "", f64::from(v));
        }
        let doc = m.to_json();
        let hist = &doc.get("histograms").unwrap().as_arr().unwrap()[0];
        let p999 = hist.get("p999").and_then(Json::as_f64).unwrap();
        assert!((p999 - 999.0).abs() < 1e-9, "{p999}");
        let p99 = hist.get("p99").and_then(Json::as_f64).unwrap();
        assert!(p99 <= p999);
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        let doc = m.to_json();
        assert_eq!(doc.get("counters").unwrap().as_arr().unwrap().len(), 0);
    }
}
