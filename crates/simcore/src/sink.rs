//! Pluggable trace storage ([`TraceSink`]): where a
//! [`crate::TraceRecorder`]'s events actually go.
//!
//! Three implementations cover the memory/fidelity trade-off space:
//!
//! * [`FullSink`] — everything in memory (tests, short runs);
//! * [`RingSink`] — a bounded recent tail (long soaks wanting a
//!   post-mortem without unbounded growth);
//! * [`StreamSink`] — every event rendered incrementally to an
//!   `io::Write` byte stream, with a bounded in-memory tail riding along
//!   so post-run checks and lints still have something to look at. The
//!   streamed bytes are rendered with the exact same formatting as
//!   [`crate::TraceRecorder::render`], so a streamed run's output is
//!   byte-identical to an in-memory run's render — the property the
//!   scheduler-equivalence suite pins down.
//!
//! Sinks see events one at a time, in dispatch order (the sharded
//! kernel's per-shard staging recorders are merged through
//! `TraceRecorder::absorb` before reaching the canonical sink), so a
//! streaming sink needs no reordering buffer.

use crate::trace::{render_event_into, TraceEvent};
use std::fmt;
use std::io::Write;

/// Destination for recorded trace events. Implementations must preserve
/// arrival order; `events()` exposes whatever is still resident in
/// memory (everything for a full sink, the recent tail otherwise).
/// Sinks are `Send` so recorders can ride lane state across the threaded
/// kernel's worker handoff (the sink itself is only ever driven by one
/// thread at a time).
pub trait TraceSink: fmt::Debug + Send {
    /// Store (and/or forward) one event.
    fn accept(&mut self, e: TraceEvent);

    /// The resident events, in arrival order.
    fn events(&self) -> &[TraceEvent];

    /// Drain the resident events (used by `TraceRecorder::absorb` on the
    /// staging side).
    fn take_events(&mut self) -> Vec<TraceEvent>;

    /// Events irrecoverably lost: ring trimming for in-memory sinks,
    /// failed writes for streaming sinks. A streamed event evicted from
    /// the in-memory tail is *not* lost — it lives downstream.
    fn dropped(&self) -> u64;

    /// Total events ever accepted (resident or not).
    fn recorded(&self) -> u64 {
        self.events().len() as u64 + self.dropped()
    }

    /// Append a `#`-prefixed comment line to the downstream copy, if any.
    /// In-memory sinks ignore comments — they are stream metadata (e.g.
    /// the closing stats footer), not events.
    fn comment(&mut self, _line: &str) {}

    /// Flush any buffered output downstream.
    fn flush(&mut self) {}
}

/// Unbounded in-memory storage: the classic full trace.
#[derive(Debug, Default)]
pub struct FullSink {
    events: Vec<TraceEvent>,
}

impl FullSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populated storage (rebuilding a recorder from parsed events).
    pub fn with_events(events: Vec<TraceEvent>) -> Self {
        FullSink { events }
    }
}

impl TraceSink for FullSink {
    fn accept(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    fn dropped(&self) -> u64 {
        0
    }
}

/// Bounded in-memory storage keeping (at least) the `cap` most recent
/// events: trimming happens once the buffer doubles the capacity, so
/// appends stay amortized O(1) over contiguous storage. At most
/// `2 × cap − 1` events are resident at any instant.
#[derive(Debug)]
pub struct RingSink {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl RingSink {
    pub fn new(cap: usize) -> Self {
        RingSink {
            events: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Push with trim; returns how many events this push evicted.
    fn push(&mut self, e: TraceEvent) -> u64 {
        self.events.push(e);
        if self.events.len() >= self.cap * 2 {
            let trim = self.events.len() - self.cap;
            self.events.drain(..trim);
            trim as u64
        } else {
            0
        }
    }
}

impl TraceSink for RingSink {
    fn accept(&mut self, e: TraceEvent) {
        self.dropped += self.push(e);
    }

    fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Incremental rendering to a byte stream, with a bounded in-memory
/// tail. Every accepted event is rendered exactly as
/// [`crate::TraceRecorder::render`] renders it and written downstream
/// immediately — so the stream of a run is byte-identical to the render
/// of the same run recorded fully in memory — while the tail keeps the
/// most recent `tail_cap` events resident for post-run queries.
///
/// The writer is used line-at-a-time: hand it a `BufWriter` (or an
/// in-memory `Vec<u8>`) — a raw `File` would pay one syscall per event.
/// Write failures are counted (and reported once on stderr) rather than
/// panicking: a full disk should degrade observability, not the run.
pub struct StreamSink {
    out: Box<dyn Write + Send>,
    /// Scratch line buffer, reused across events.
    buf: String,
    tail: RingSink,
    written: u64,
    lost: u64,
}

impl StreamSink {
    pub fn new(out: Box<dyn Write + Send>, tail_cap: usize) -> Self {
        StreamSink {
            out,
            buf: String::new(),
            tail: RingSink::new(tail_cap),
            written: 0,
            lost: 0,
        }
    }

    fn write_line(&mut self) {
        match self.out.write_all(self.buf.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => {
                if self.lost == 0 {
                    eprintln!("trace stream write failed (suppressing further reports): {e}");
                }
                self.lost += 1;
            }
        }
    }
}

// `Box<dyn Write + Send>` has no `Debug`; summarize the counters instead.
impl fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamSink")
            .field("written", &self.written)
            .field("lost", &self.lost)
            .field("tail", &self.tail)
            .finish_non_exhaustive()
    }
}

impl TraceSink for StreamSink {
    fn accept(&mut self, e: TraceEvent) {
        self.buf.clear();
        render_event_into(&mut self.buf, &e);
        self.write_line();
        // Tail eviction is not loss — the event is downstream.
        self.tail.push(e);
    }

    fn events(&self) -> &[TraceEvent] {
        self.tail.events()
    }

    fn take_events(&mut self) -> Vec<TraceEvent> {
        self.tail.take_events()
    }

    fn dropped(&self) -> u64 {
        self.lost
    }

    fn recorded(&self) -> u64 {
        self.written + self.lost
    }

    fn comment(&mut self, line: &str) {
        self.buf.clear();
        if !line.starts_with('#') {
            self.buf.push_str("# ");
        }
        self.buf.push_str(line);
        self.buf.push('\n');
        match self.out.write_all(self.buf.as_bytes()) {
            Ok(()) => {}
            Err(e) => {
                if self.lost == 0 {
                    eprintln!("trace stream write failed (suppressing further reports): {e}");
                }
                self.lost += 1;
            }
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Shared byte buffer so tests can inspect what a sink streamed
    /// after the sink (which owns its writer) is dropped.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn ev(at: u64, topic: &'static str, detail: &str) -> TraceEvent {
        TraceEvent {
            at: SimTime(at),
            topic: topic.into(),
            detail: detail.to_string(),
        }
    }

    #[test]
    fn stream_bytes_match_full_render() {
        let buf = SharedBuf::default();
        let mut stream = StreamSink::new(Box::new(buf.clone()), 4);
        let mut full = FullSink::new();
        for i in 0..50u64 {
            let e = ev(i * 1000, "tick", &format!("n{i}"));
            stream.accept(e.clone());
            full.accept(e);
        }
        let mut rendered = String::new();
        for e in full.events() {
            render_event_into(&mut rendered, e);
        }
        let streamed = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(streamed, rendered);
        // The tail holds only recent events, yet nothing was lost.
        assert!(stream.events().len() < 10);
        assert_eq!(stream.dropped(), 0);
        assert_eq!(stream.recorded(), 50);
        assert_eq!(stream.events().last().unwrap().detail, "n49");
    }

    #[test]
    fn stream_comments_are_prefixed_and_not_events() {
        let buf = SharedBuf::default();
        let mut s = StreamSink::new(Box::new(buf.clone()), 4);
        s.accept(ev(1, "a", "x"));
        s.comment("rb-trace v1 events=1");
        s.comment("# already prefixed");
        s.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "# rb-trace v1 events=1");
        assert_eq!(lines[2], "# already prefixed");
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.recorded(), 1);
    }

    #[test]
    fn ring_sink_counts_drops_and_full_sink_never_drops() {
        let mut ring = RingSink::new(3);
        let mut full = FullSink::new();
        for i in 0..20u64 {
            ring.accept(ev(i, "t", ""));
            full.accept(ev(i, "t", ""));
        }
        assert_eq!(full.dropped(), 0);
        assert_eq!(full.recorded(), 20);
        assert!(ring.dropped() > 0);
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.events().len() as u64 + ring.dropped(), 20);
    }

    #[test]
    fn failed_writes_count_as_dropped() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut s = StreamSink::new(Box::new(Broken), 4);
        s.accept(ev(1, "a", "x"));
        s.accept(ev(2, "a", "y"));
        assert_eq!(s.dropped(), 2);
        // The tail still has them — post-mortems survive a dead disk.
        assert_eq!(s.events().len(), 2);
    }
}
