//! A fast, deterministic, non-cryptographic hasher for simulation-internal
//! maps.
//!
//! The standard library's `HashMap` defaults to SipHash, whose keyed,
//! DoS-resistant design costs real time on the simulator's hot paths —
//! profiles of the utilization workload attribute >10% of wall time to
//! hashing small integer ids and short hostnames. Nothing in the simulator
//! hashes attacker-controlled input, and no replayed behavior depends on
//! map iteration order (the kernel's determinism comes from the event
//! queue's `(time, seq)` ordering), so a fixed-key multiply-xor hash is
//! safe here and several times faster.
//!
//! The mixing function is the classic Fibonacci-style `(h ^ word) * K`
//! fold with an odd 64-bit constant derived from the golden ratio, the
//! same family used by rustc's internal hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant: `2^64 / φ`, forced odd.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const ROTATE: u32 = 26;

/// Word-at-a-time multiply-xor hasher. Deterministic across runs and
/// platforms (always operates on little-endian word values).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low bits (what HashMap buckets use)
        // depend on every mixed word.
        let h = self.hash;
        let h = (h ^ (h >> 32)).wrapping_mul(SEED);
        h ^ (h >> 29)
    }
}

/// `HashMap` with the fixed-key [`FxHasher`]; drop-in via `::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fixed-key [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("n01"), hash_of("n01"));
    }

    #[test]
    fn distinguishes_boundary_splits() {
        assert_ne!(hash_of(("ab", "")), hash_of(("a", "b")));
        assert_ne!(hash_of(""), hash_of("\0"));
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap buckets use the low bits; sequential ids must not
        // collide into a handful of buckets.
        let mut buckets = std::collections::HashSet::new();
        for i in 0u64..256 {
            buckets.insert(hash_of(i) & 0xff);
        }
        assert!(
            buckets.len() > 128,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("host{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("host{i}")), Some(&i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
