//! Kernel self-profiling: per-behavior / per-message-kind dispatch
//! accounting.
//!
//! The profiler answers "where does *wall-clock* time go while the
//! simulation runs" — which behavior's `handle` is hot, which payload
//! kind dominates dispatch, how evenly the sharded engine's lanes are
//! loaded — so that scale benchmarks can be tuned from data instead of
//! guesses. It is strictly host-side instrumentation: recording never
//! touches sim-time, scheduling order, or the RNG, so a profiled run
//! replays byte-identical to an unprofiled one (the determinism
//! contract's "pure observer" rule).
//!
//! Cost model: one `Instant::now()` pair per dispatch plus a `BTreeMap`
//! lookup keyed by `&'static str` (behavior names are static, so no
//! allocation), and a handful of integer adds into a [`ProfEntry`].
//! Durations land in log₂-nanosecond buckets — constant memory per key,
//! quantiles estimated from bucket midpoints — rather than raw sample
//! vectors, so a 10⁸-dispatch run profiles in a few kilobytes.

use crate::json::Json;
use crate::registry::MetricsRegistry;
use std::collections::BTreeMap;

/// Number of log₂(ns) buckets: bucket `i` covers `[2^i, 2^(i+1))` ns,
/// with the top bucket absorbing everything ≥ 2³¹ ns (~2.1 s — far
/// beyond any sane single dispatch).
const BUCKETS: usize = 32;

/// A started wall-clock measurement. This is the *only* place the
/// simulation stack reads the host clock — the profiler owns its clock so
/// kernel code never touches `Instant` directly, and the reading feeds
/// nothing but [`ProfEntry`] statistics (never sim-time; the pure-observer
/// contract is pinned by `scheduler_equiv::profiling_is_a_pure_observer`).
#[derive(Debug, Clone, Copy)]
pub struct ProfTimer(std::time::Instant);

impl ProfTimer {
    #[inline]
    pub fn start() -> Self {
        ProfTimer(std::time::Instant::now())
    }

    /// Nanoseconds since [`ProfTimer::start`], saturated into `u64`.
    #[inline]
    pub fn elapsed_ns(self) -> u64 {
        self.0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// Accumulated wall-time statistics for one profiling key.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProfEntry {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    buckets: [u64; BUCKETS],
}

fn bucket_of(ns: u64) -> usize {
    // floor(log2(max(ns, 1))), clamped into range; ns = 0 lands in
    // bucket 0 alongside [1, 2).
    (63 - (ns | 1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Bucket midpoint used for quantile estimates: 1.5 × 2^i, the center
/// of `[2^i, 2^(i+1))`.
fn bucket_mid_ns(i: usize) -> f64 {
    1.5 * (1u64 << i) as f64
}

impl ProfEntry {
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_of(ns)] += 1;
    }

    pub fn merge(&mut self, other: &ProfEntry) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Quantile estimate from the log₂ buckets, `q` in `[0, 100]`: the
    /// midpoint of the bucket holding the q-th ranked duration. Accurate
    /// to within a factor of ~1.5 — plenty for "which leg is slow".
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (q.clamp(0.0, 100.0) / 100.0 * self.count as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Cap the estimate at the observed maximum so the top
                // bucket cannot report beyond reality.
                return bucket_mid_ns(i).min(self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }

    /// Export as JSON, durations in microseconds (the natural unit for
    /// dispatch work: handlers run hundreds of ns to tens of µs).
    pub fn to_json(&self) -> Json {
        let us = |ns: f64| ns / 1e3;
        Json::obj()
            .set("count", self.count)
            .set("wall_ms", self.total_ns as f64 / 1e6)
            .set("mean_us", us(self.mean_ns()))
            .set("max_us", us(self.max_ns as f64))
            .set("p50_us", us(self.quantile_ns(50.0)))
            .set("p90_us", us(self.quantile_ns(90.0)))
            .set("p99_us", us(self.quantile_ns(99.0)))
            .set("p999_us", us(self.quantile_ns(99.9)))
    }
}

/// The kernel's self-profile: dispatch wall time keyed by behavior name,
/// by payload kind, and by shard lane. All keys are `&'static str` or
/// small indices — recording allocates nothing after the first sighting
/// of a key.
#[derive(Debug, Default)]
pub struct Profiler {
    behaviors: BTreeMap<&'static str, ProfEntry>,
    payloads: BTreeMap<&'static str, ProfEntry>,
    lanes: Vec<ProfEntry>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// One behavior dispatch (`World::dispatch`) took `ns` of host time.
    pub fn record_behavior(&mut self, name: &'static str, ns: u64) {
        self.behaviors.entry(name).or_default().record(ns);
    }

    /// One delivered message of the given payload kind took `ns`.
    pub fn record_payload(&mut self, kind: &'static str, ns: u64) {
        self.payloads.entry(kind).or_default().record(ns);
    }

    /// One sharded-engine lane dispatch on `shard` took `ns`.
    pub fn record_lane(&mut self, shard: usize, ns: u64) {
        if self.lanes.len() <= shard {
            self.lanes.resize(shard + 1, ProfEntry::default());
        }
        self.lanes[shard].record(ns);
    }

    pub fn behaviors(&self) -> impl Iterator<Item = (&'static str, &ProfEntry)> {
        self.behaviors.iter().map(|(k, v)| (*k, v))
    }

    pub fn payloads(&self) -> impl Iterator<Item = (&'static str, &ProfEntry)> {
        self.payloads.iter().map(|(k, v)| (*k, v))
    }

    pub fn lanes(&self) -> &[ProfEntry] {
        &self.lanes
    }

    pub fn total_dispatches(&self) -> u64 {
        self.behaviors.values().map(|e| e.count).sum()
    }

    pub fn total_wall_ns(&self) -> u64 {
        self.behaviors.values().map(|e| e.total_ns).sum()
    }

    /// Fold another profiler (e.g. a shard-local one) into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (k, v) in &other.behaviors {
            self.behaviors.entry(k).or_default().merge(v);
        }
        for (k, v) in &other.payloads {
            self.payloads.entry(k).or_default().merge(v);
        }
        for (i, v) in other.lanes.iter().enumerate() {
            if self.lanes.len() <= i {
                self.lanes.resize(i + 1, ProfEntry::default());
            }
            self.lanes[i].merge(v);
        }
    }

    /// Publish cumulative totals into the metrics registry as `prof.*`
    /// counters using the registry's delta convention: each call adds
    /// only what accumulated since the previous call, so periodic
    /// publication (e.g. from `sample_metrics_if_due`) never
    /// double-counts. Wall time is published in nanoseconds.
    pub fn publish_deltas(&self, reg: &mut MetricsRegistry) {
        fn delta(reg: &mut MetricsRegistry, name: &'static str, label: &str, total: u64) {
            let d = total - reg.counter(name, label);
            if d > 0 {
                reg.add(name, label, d);
            }
        }
        for (name, e) in &self.behaviors {
            delta(reg, "prof.behavior.events", name, e.count);
            delta(reg, "prof.behavior.wall_ns", name, e.total_ns);
        }
        for (kind, e) in &self.payloads {
            delta(reg, "prof.payload.events", kind, e.count);
            delta(reg, "prof.payload.wall_ns", kind, e.total_ns);
        }
        for (i, e) in self.lanes.iter().enumerate() {
            let label = i.to_string();
            delta(reg, "prof.lane.events", &label, e.count);
            delta(reg, "prof.lane.wall_ns", &label, e.total_ns);
        }
    }

    /// The `profile` provenance section for bench reports: every key's
    /// count, total wall time, and bucket-estimated quantiles.
    pub fn to_json(&self) -> Json {
        let section = |entries: &BTreeMap<&'static str, ProfEntry>| {
            Json::Arr(
                entries
                    .iter()
                    .map(|(name, e)| e.to_json().set("name", *name))
                    .collect(),
            )
        };
        Json::obj()
            .set("behaviors", section(&self.behaviors))
            .set("payloads", section(&self.payloads))
            .set(
                "lanes",
                Json::Arr(
                    self.lanes
                        .iter()
                        .enumerate()
                        .map(|(i, e)| e.to_json().set("shard", i))
                        .collect(),
                ),
            )
            .set("total_dispatches", self.total_dispatches())
            .set("total_wall_ms", self.total_wall_ns() as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn entry_accumulates_and_estimates_quantiles() {
        let mut e = ProfEntry::default();
        for _ in 0..90 {
            e.record(1_000); // bucket 9
        }
        for _ in 0..10 {
            e.record(1_000_000); // bucket 19
        }
        assert_eq!(e.count, 100);
        assert_eq!(e.total_ns, 90 * 1_000 + 10 * 1_000_000);
        assert_eq!(e.max_ns, 1_000_000);
        // p50 sits in the fast bucket, p99 in the slow one.
        let p50 = e.quantile_ns(50.0);
        assert!((512.0..2048.0).contains(&p50), "{p50}");
        let p99 = e.quantile_ns(99.0);
        assert!((524_288.0..=1_000_000.0).contains(&p99), "{p99}");
        // Quantiles are monotone and capped at the observed max.
        assert!(e.quantile_ns(50.0) <= e.quantile_ns(99.9));
        assert!(e.quantile_ns(100.0) <= e.max_ns as f64);
        assert!(ProfEntry::default().quantile_ns(50.0).is_nan());
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut a = ProfEntry::default();
        let mut b = ProfEntry::default();
        let mut both = ProfEntry::default();
        for i in 0..1000u64 {
            let ns = i * i % 50_000;
            if i % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
            both.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn publish_deltas_never_double_counts() {
        let mut p = Profiler::new();
        let mut reg = MetricsRegistry::new();
        p.record_behavior("broker", 500);
        p.record_behavior("broker", 700);
        p.record_payload("Broker", 300);
        p.record_lane(1, 400);
        p.publish_deltas(&mut reg);
        assert_eq!(reg.counter("prof.behavior.events", "broker"), 2);
        assert_eq!(reg.counter("prof.behavior.wall_ns", "broker"), 1200);
        assert_eq!(reg.counter("prof.payload.events", "Broker"), 1);
        assert_eq!(reg.counter("prof.lane.events", "1"), 1);
        // Publishing again with no new work adds nothing…
        p.publish_deltas(&mut reg);
        assert_eq!(reg.counter("prof.behavior.events", "broker"), 2);
        // …and new work publishes only the delta.
        p.record_behavior("broker", 100);
        p.publish_deltas(&mut reg);
        assert_eq!(reg.counter("prof.behavior.events", "broker"), 3);
        assert_eq!(reg.counter("prof.behavior.wall_ns", "broker"), 1300);
    }

    #[test]
    fn profiler_merge_and_json_shape() {
        let mut shard0 = Profiler::new();
        let mut shard1 = Profiler::new();
        shard0.record_behavior("pvmd", 1_000);
        shard0.record_lane(0, 1_000);
        shard1.record_behavior("pvmd", 3_000);
        shard1.record_behavior("broker", 2_000);
        shard1.record_lane(1, 3_000);
        let mut total = Profiler::new();
        total.merge(&shard0);
        total.merge(&shard1);
        assert_eq!(total.total_dispatches(), 3);
        assert_eq!(total.total_wall_ns(), 6_000);
        assert_eq!(total.lanes().len(), 2);

        let doc = total.to_json();
        let behaviors = doc.get("behaviors").unwrap().as_arr().unwrap();
        assert_eq!(behaviors.len(), 2);
        // BTreeMap order: broker before pvmd.
        assert_eq!(behaviors[0].get("name").unwrap().as_str(), Some("broker"));
        let pvmd = &behaviors[1];
        assert_eq!(pvmd.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            doc.get("total_dispatches").and_then(Json::as_f64),
            Some(3.0)
        );
        // Round-trips through the parser.
        let back = crate::json::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }
}
