//! The event queue: a time-ordered priority queue with stable FIFO ordering
//! among events scheduled for the same instant.
//!
//! Two interchangeable backends sit behind one API, selected by
//! [`QueueKind`]: a binary heap (the default) and a hierarchical
//! [`TimerWheel`](crate::wheel::TimerWheel) with `O(1)` insertion. Both
//! honor the same determinism contract — pops come in non-decreasing time
//! order and equal-time events pop in push order — so whole-simulation
//! replays are bit-identical regardless of which backend runs them.

use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry carrying its event inline — the representation for small
/// payloads, where moving the event during sifts costs nothing extra.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Payloads at or below this size stay inline in the priority structure;
/// larger ones move to the slot store and the structure orders 24-byte
/// `(at, seq, slot)` keys instead. The crossover sits where one extra
/// random store access per pop beats sifting/cascading fat entries —
/// measured on a depth-130 sliding-window workload, indirection cuts
/// queue time ~38% for ~96-byte simulation events but roughly doubles it
/// for bare `u64` payloads.
const INLINE_MAX_BYTES: usize = 32;

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary heap: `O(log n)` push/pop, the long-standing default.
    #[default]
    Heap,
    /// Hierarchical timer wheel: `O(1)` push, amortized-constant pop.
    Wheel,
}

/// Counters describing how hard the event queue worked during a run.
///
/// `scheduled`/`dispatched` are lifetime totals; `peak_depth` is the largest
/// number of simultaneously pending events, the figure long utilization
/// sweeps watch to confirm the kernel stays flat as load grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events pushed over the queue's lifetime.
    pub scheduled: u64,
    /// Events popped over the queue's lifetime.
    pub dispatched: u64,
    /// Maximum simultaneous pending events.
    pub peak_depth: usize,
    /// Currently pending events.
    pub depth: usize,
}

/// Pluggable tie-break policy for same-time events.
///
/// The default `(time, seq)` order dispatches equal-time events FIFO; an
/// oracle replaces *only* that tie-break — time order itself is never
/// negotiable. [`EventQueue::pop_with_oracle`] hands the oracle the full
/// equal-time batch in FIFO order and dispatches the entry at the returned
/// index, so index `0` is always the schedule the plain kernel would have
/// run. Model checkers enumerate the other indices.
pub trait ScheduleOracle<E> {
    /// Pick which of the equal-time `batch` entries (FIFO order, each with
    /// its insertion sequence number) dispatches next. Out-of-range
    /// returns are clamped to the last entry.
    fn choose(&mut self, at: SimTime, batch: &[(u64, E)]) -> usize;
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(TimerWheel<E>),
    /// Heap over slot keys; events live in the queue's slot store.
    HeapSlab(BinaryHeap<Entry<u32>>),
    /// Wheel over slot keys; events live in the queue's slot store.
    WheelSlab(TimerWheel<u32>),
}

/// A deterministic discrete-event queue.
///
/// Events pop in non-decreasing time order; events at equal times pop in the
/// order they were pushed. This tie-break is what makes whole-simulation
/// replays bit-identical across runs, platforms, and backends.
pub struct EventQueue<E> {
    backend: Backend<E>,
    /// Free-list slot store for event payloads when the slab
    /// representation is active; unused (and unallocated) otherwise.
    store: Vec<Option<E>>,
    free: Vec<u32>,
    /// Next sequence number [`push`](EventQueue::push) would assign. With
    /// [`push_seq`](EventQueue::push_seq) sequence numbers may be
    /// externally allocated (shared across a sharded kernel's lanes), so
    /// `seq` is an ordering watermark, not a push count.
    seq: u64,
    /// Events pushed over the queue's lifetime.
    scheduled: u64,
    popped: u64,
    /// Currently pending events. Tracked explicitly because `seq` no
    /// longer counts pushes when sequence numbers come from outside.
    depth: usize,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// A heap-backed queue (the default).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// Pre-size the backing storage for an expected pending-event depth,
    /// sparing short-lived worlds the first few growth reallocations.
    pub fn reserve(&mut self, depth: usize) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.reserve(depth),
            Backend::HeapSlab(heap) => heap.reserve(depth),
            Backend::Wheel(_) | Backend::WheelSlab(_) => {}
        }
        if let Backend::HeapSlab(_) | Backend::WheelSlab(_) = self.backend {
            self.store.reserve(depth);
            self.free.reserve(depth);
        }
    }

    /// A queue with an explicitly chosen backend. The in-memory
    /// representation (inline vs. slot-store) is picked from the payload
    /// size; both representations honor the same ordering contract, so
    /// the choice is invisible to everything but the profiler.
    pub fn with_kind(kind: QueueKind) -> Self {
        let slab = std::mem::size_of::<E>() > INLINE_MAX_BYTES;
        EventQueue {
            backend: match (kind, slab) {
                (QueueKind::Heap, false) => Backend::Heap(BinaryHeap::new()),
                (QueueKind::Wheel, false) => Backend::Wheel(TimerWheel::new()),
                (QueueKind::Heap, true) => Backend::HeapSlab(BinaryHeap::new()),
                (QueueKind::Wheel, true) => Backend::WheelSlab(TimerWheel::new()),
            },
            store: Vec::new(),
            free: Vec::new(),
            seq: 0,
            scheduled: 0,
            popped: 0,
            depth: 0,
            peak: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) | Backend::HeapSlab(_) => QueueKind::Heap,
            Backend::Wheel(_) | Backend::WheelSlab(_) => QueueKind::Wheel,
        }
    }

    fn store_insert(&mut self, event: E) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.store[slot as usize] = Some(event);
            slot
        } else {
            assert!(self.store.len() < u32::MAX as usize, "event queue overflow");
            self.store.push(Some(event));
            (self.store.len() - 1) as u32
        }
    }

    fn store_take(&mut self, slot: u32) -> E {
        let event = self.store[slot as usize]
            .take()
            .expect("backend keys and slot store in sync");
        self.free.push(slot);
        event
    }

    /// Hand `event` to the backend under an already-assigned sequence
    /// number. Shared by [`push`], [`push_seq`] and [`requeue`]; counter
    /// maintenance stays with the callers.
    ///
    /// [`push`]: EventQueue::push
    /// [`push_seq`]: EventQueue::push_seq
    /// [`requeue`]: EventQueue::requeue
    fn place(&mut self, at: SimTime, seq: u64, event: E) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Entry { at, seq, event }),
            Backend::Wheel(wheel) => wheel.push(at.0, seq, event),
            Backend::HeapSlab(_) => {
                let slot = self.store_insert(event);
                let Backend::HeapSlab(heap) = &mut self.backend else {
                    unreachable!()
                };
                heap.push(Entry {
                    at,
                    seq,
                    event: slot,
                });
            }
            Backend::WheelSlab(_) => {
                let slot = self.store_insert(event);
                let Backend::WheelSlab(wheel) = &mut self.backend else {
                    unreachable!()
                };
                wheel.push(at.0, seq, slot);
            }
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.place(at, seq, event);
        self.depth += 1;
        if self.depth > self.peak {
            self.peak = self.depth;
        }
    }

    /// Schedule `event` at `at` under an externally allocated sequence
    /// key. The parallel kernel assigns machine-affine dispatch keys
    /// ([`crate::DispatchKey`]) at push time; they are unique and strictly
    /// increasing *per origin machine* but arbitrary per queue, so no
    /// watermark is enforced — ties in `at` break by the key's `u64`
    /// order, whatever interleaving the keys arrived in (both backends
    /// guarantee exact `(time, key)` pop order for arbitrary streams).
    pub fn push_seq(&mut self, at: SimTime, seq: u64, event: E) {
        self.seq = self.seq.max(seq + 1);
        self.scheduled += 1;
        self.place(at, seq, event);
        self.depth += 1;
        if self.depth > self.peak {
            self.peak = self.depth;
        }
    }

    /// Remove and return the earliest event together with its insertion
    /// sequence number, without touching the lifetime counters.
    fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        enum Popped<E> {
            Inline(SimTime, u64, E),
            Slab(SimTime, u64, u32),
        }
        let popped = match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|e| Popped::Inline(e.at, e.seq, e.event)),
            Backend::Wheel(wheel) => wheel
                .pop()
                .map(|(t, seq, ev)| Popped::Inline(SimTime(t), seq, ev)),
            Backend::HeapSlab(heap) => heap.pop().map(|e| Popped::Slab(e.at, e.seq, e.event)),
            Backend::WheelSlab(wheel) => wheel
                .pop()
                .map(|(t, seq, s)| Popped::Slab(SimTime(t), seq, s)),
        }?;
        Some(match popped {
            Popped::Inline(at, seq, event) => (at, seq, event),
            Popped::Slab(at, seq, slot) => (at, seq, self.store_take(slot)),
        })
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _, event) = self.pop_entry()?;
        self.popped += 1;
        self.depth -= 1;
        Some((at, event))
    }

    /// Remove and return *every* event scheduled for the earliest pending
    /// instant, in FIFO (sequence) order. Each entry carries its original
    /// sequence number so unchosen entries can be [`requeue`]d without
    /// disturbing the tie-break of later pops.
    ///
    /// [`requeue`]: EventQueue::requeue
    pub fn pop_front_batch(&mut self) -> Option<(SimTime, Vec<(u64, E)>)> {
        let at = self.peek_time()?;
        let mut batch = Vec::new();
        while self.peek_time() == Some(at) {
            let (_, seq, event) = self.pop_entry().expect("peeked time implies an event");
            batch.push((seq, event));
        }
        self.popped += batch.len() as u64;
        self.depth -= batch.len();
        Some((at, batch))
    }

    /// Put back an event taken by [`pop_front_batch`] with its original
    /// sequence number, undoing its share of the dispatch accounting.
    ///
    /// Callers must requeue the unchosen remainder of a batch in ascending
    /// sequence order before any new `push`: the wheel backend keeps
    /// equal-time events FIFO by slot order, and since a batch drains its
    /// slot completely, in-order requeues rebuild exactly the suffix the
    /// next pop expects. Under that discipline both backends stay
    /// bit-identical.
    ///
    /// [`pop_front_batch`]: EventQueue::pop_front_batch
    pub fn requeue(&mut self, at: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.seq, "requeue of a sequence never issued");
        self.place(at, seq, event);
        self.popped -= 1;
        self.depth += 1;
    }

    /// Remove the next event, letting `oracle` pick among same-time ties.
    ///
    /// Singleton instants skip the oracle entirely, so installing one only
    /// perturbs executions where a genuine scheduling choice exists. The
    /// chosen index is clamped; returning `0` reproduces the default
    /// `(time, seq)` FIFO tie-break exactly.
    pub fn pop_with_oracle(&mut self, oracle: &mut dyn ScheduleOracle<E>) -> Option<(SimTime, E)> {
        let (at, mut batch) = self.pop_front_batch()?;
        let idx = if batch.len() == 1 {
            0
        } else {
            oracle.choose(at, &batch).min(batch.len() - 1)
        };
        // O(1) removal; the remainder is re-sorted so requeues happen in
        // ascending sequence order (the discipline `requeue` documents —
        // the wheel rebuilds its slot suffix from exactly that order).
        let (_, chosen) = batch.swap_remove(idx);
        batch.sort_unstable_by_key(|&(seq, _)| seq);
        // `pop_front_batch` counted the whole batch as dispatched and each
        // requeue undoes one share, so the chosen event's accounting is
        // already exact here.
        for (seq, event) in batch {
            self.requeue(at, seq, event);
        }
        Some((at, chosen))
    }

    /// Visit every pending event in unspecified order (backend-dependent).
    /// Intended for order-independent accounting such as state
    /// fingerprinting; nothing about iteration order is stable.
    pub fn for_each_pending(&self, mut f: impl FnMut(SimTime, u64, &E)) {
        match &self.backend {
            Backend::Heap(heap) => {
                for e in heap.iter() {
                    f(e.at, e.seq, &e.event);
                }
            }
            Backend::Wheel(wheel) => wheel.for_each(|t, seq, ev| f(SimTime(t), seq, ev)),
            Backend::HeapSlab(heap) => {
                for e in heap.iter() {
                    let ev = self.store[e.event as usize]
                        .as_ref()
                        .expect("backend keys and slot store in sync");
                    f(e.at, e.seq, ev);
                }
            }
            Backend::WheelSlab(wheel) => wheel.for_each(|t, seq, slot| {
                let ev = self.store[*slot as usize]
                    .as_ref()
                    .expect("backend keys and slot store in sync");
                f(SimTime(t), seq, ev);
            }),
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.at),
            Backend::HeapSlab(heap) => heap.peek().map(|e| e.at),
            Backend::Wheel(wheel) => wheel.peek_time().map(SimTime),
            Backend::WheelSlab(wheel) => wheel.peek_time().map(SimTime),
        }
    }

    /// `(time, sequence)` key of the earliest pending event — what the
    /// lane coordinator compares across lane queues to find the globally
    /// next dispatch without popping.
    ///
    /// Exact on every backend for arbitrary key streams: the heap
    /// backends read their root, and the wheel backends keep each slot
    /// sorted by `(time, seq)` on insertion, so the head of the lowest
    /// occupied slot is the true minimum even for the parallel kernel's
    /// machine-affine keys, which are not globally monotone within a
    /// lane.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| (e.at, e.seq)),
            Backend::HeapSlab(heap) => heap.peek().map(|e| (e.at, e.seq)),
            Backend::Wheel(wheel) => wheel.peek_key().map(|(t, s)| (SimTime(t), s)),
            Backend::WheelSlab(wheel) => wheel.peek_key().map(|(t, s)| (SimTime(t), s)),
        }
    }

    pub fn len(&self) -> usize {
        self.depth
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled so far (including popped ones).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events dispatched so far.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Largest number of simultaneously pending events so far.
    pub fn peak_depth(&self) -> usize {
        self.peak
    }

    /// Snapshot of the queue's work counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.scheduled,
            dispatched: self.popped,
            peak_depth: self.peak,
            depth: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> [QueueKind; 2] {
        [QueueKind::Heap, QueueKind::Wheel]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime(30), "c");
            q.push(SimTime(10), "a");
            q.push(SimTime(20), "b");
            assert_eq!(q.pop(), Some((SimTime(10), "a")));
            assert_eq!(q.pop(), Some((SimTime(20), "b")));
            assert_eq!(q.pop(), Some((SimTime(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn equal_times_pop_fifo() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100 {
                q.push(SimTime(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((SimTime(5), i)));
            }
        }
    }

    #[test]
    fn batch_pop_and_requeue_preserve_fifo_and_counters() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime(5), "a");
            q.push(SimTime(5), "b");
            q.push(SimTime(5), "c");
            q.push(SimTime(9), "z");
            let (at, batch) = q.pop_front_batch().unwrap();
            assert_eq!(at, SimTime(5));
            assert_eq!(
                batch.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
                ["a", "b", "c"]
            );
            // Dispatch "b"; requeue the rest in ascending seq order.
            let mut rest: Vec<_> = batch.into_iter().filter(|&(_, e)| e != "b").collect();
            rest.sort_by_key(|&(seq, _)| seq);
            for (seq, e) in rest {
                q.requeue(at, seq, e);
            }
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some((SimTime(5), "a")));
            assert_eq!(q.pop(), Some((SimTime(5), "c")));
            assert_eq!(q.pop(), Some((SimTime(9), "z")));
            assert_eq!(q.scheduled_total(), 4);
            assert_eq!(q.popped_total(), 4);
        }
    }

    #[test]
    fn oracle_index_zero_matches_fifo() {
        struct Fifo;
        impl<E> ScheduleOracle<E> for Fifo {
            fn choose(&mut self, _at: SimTime, _batch: &[(u64, E)]) -> usize {
                0
            }
        }
        for kind in kinds() {
            let mut plain = EventQueue::with_kind(kind);
            let mut guided = EventQueue::with_kind(kind);
            for (t, v) in [(5, 'a'), (5, 'b'), (3, 'x'), (5, 'c'), (3, 'y')] {
                plain.push(SimTime(t), v);
                guided.push(SimTime(t), v);
            }
            loop {
                let a = plain.pop();
                let b = guided.pop_with_oracle(&mut Fifo);
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(plain.stats(), guided.stats());
        }
    }

    #[test]
    fn oracle_can_flip_a_tie() {
        struct Last;
        impl<E> ScheduleOracle<E> for Last {
            fn choose(&mut self, _at: SimTime, batch: &[(u64, E)]) -> usize {
                batch.len() - 1
            }
        }
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime(5), "a");
            q.push(SimTime(5), "b");
            assert_eq!(q.pop_with_oracle(&mut Last), Some((SimTime(5), "b")));
            // The remainder still pops FIFO.
            assert_eq!(q.pop_with_oracle(&mut Last), Some((SimTime(5), "a")));
            assert_eq!(q.pop_with_oracle(&mut Last), None);
        }
    }

    #[test]
    fn oracle_requeue_keeps_fifo_after_middle_pick() {
        // Picking from the middle of a 4-wide tie must leave the other
        // three popping in their original FIFO order — the swap_remove in
        // pop_with_oracle re-sorts the remainder before requeueing.
        struct Pick(usize);
        impl<E> ScheduleOracle<E> for Pick {
            fn choose(&mut self, _at: SimTime, _batch: &[(u64, E)]) -> usize {
                let i = self.0;
                self.0 = 0;
                i
            }
        }
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for v in ["a", "b", "c", "d"] {
                q.push(SimTime(5), v);
            }
            q.push(SimTime(9), "z");
            let mut oracle = Pick(2);
            assert_eq!(q.pop_with_oracle(&mut oracle), Some((SimTime(5), "c")));
            assert_eq!(q.pop_with_oracle(&mut oracle), Some((SimTime(5), "a")));
            assert_eq!(q.pop_with_oracle(&mut oracle), Some((SimTime(5), "b")));
            assert_eq!(q.pop_with_oracle(&mut oracle), Some((SimTime(5), "d")));
            assert_eq!(q.pop_with_oracle(&mut oracle), Some((SimTime(9), "z")));
            assert_eq!(q.stats().dispatched, 5);
            assert_eq!(q.stats().depth, 0);
        }
    }

    #[test]
    fn push_seq_interleaves_with_external_counter() {
        // Two lanes fed from one shared counter: each lane sees a gapping
        // but increasing sequence stream and pops in global (time, seq)
        // order; depth/scheduled counters track pushes, not the watermark.
        for kind in kinds() {
            let mut a = EventQueue::with_kind(kind);
            let mut b = EventQueue::with_kind(kind);
            let mut next = 0u64;
            let mut alloc = || {
                let s = next;
                next += 1;
                s
            };
            a.push_seq(SimTime(5), alloc(), "a0");
            b.push_seq(SimTime(5), alloc(), "b0");
            b.push_seq(SimTime(3), alloc(), "b1");
            a.push_seq(SimTime(5), alloc(), "a1");
            assert_eq!(a.len(), 2);
            assert_eq!(a.scheduled_total(), 2);
            assert_eq!(b.peek_key(), Some((SimTime(3), 2)));
            assert_eq!(a.peek_key(), Some((SimTime(5), 0)));
            assert_eq!(b.pop(), Some((SimTime(3), "b1")));
            assert_eq!(b.peek_key(), Some((SimTime(5), 1)));
            assert_eq!(a.pop(), Some((SimTime(5), "a0")));
            assert_eq!(b.pop(), Some((SimTime(5), "b0")));
            assert_eq!(a.pop(), Some((SimTime(5), "a1")));
            assert_eq!(a.stats().depth + b.stats().depth, 0);
        }
    }

    #[test]
    fn peek_key_matches_next_pop() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.peek_key(), None);
            for (t, v) in [(30u64, 0u64), (10, 1), (10, 2), (900_000, 3), (10, 4)] {
                q.push(SimTime(t), v);
            }
            while let Some((at, seq)) = q.peek_key() {
                let (pat, _) = q.pop().unwrap();
                assert_eq!(pat, at);
                // seq numbers were assigned in push order 0..5.
                assert!(seq < 5);
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn for_each_pending_sees_exactly_the_pending_multiset() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..20u64 {
                q.push(SimTime(i % 4), i);
            }
            q.pop();
            q.pop();
            let mut seen = Vec::new();
            q.for_each_pending(|at, _seq, &ev| seen.push((at, ev)));
            assert_eq!(seen.len(), q.len());
            seen.sort();
            let mut expect: Vec<_> = (0..20u64).map(|i| (SimTime(i % 4), i)).collect();
            expect.sort();
            assert_eq!(seen, expect[2..].to_vec());
        }
    }

    #[test]
    fn counters_and_peek() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.kind(), kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(SimTime(7), ());
            q.push(SimTime(3), ());
            assert_eq!(q.peek_time(), Some(SimTime(3)));
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.scheduled_total(), 2);
            assert_eq!(q.popped_total(), 1);
            assert_eq!(q.peak_depth(), 2);
        }
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::rng::SimRng;

    /// Popping never yields a time earlier than the previous pop, and
    /// every pushed event comes back exactly once.
    #[test]
    fn pops_are_monotone_and_complete() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut rng = SimRng::seeded(0x0101);
            for _ in 0..128 {
                let times: Vec<u64> = (0..rng.uniform_u64(1, 200))
                    .map(|_| rng.uniform_u64(0, 1_000))
                    .collect();
                let mut q = EventQueue::with_kind(kind);
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime(t), i);
                }
                let mut seen = vec![false; times.len()];
                let mut last = SimTime::ZERO;
                while let Some((at, idx)) = q.pop() {
                    assert!(at >= last);
                    assert_eq!(at, SimTime(times[idx]));
                    assert!(!seen[idx]);
                    seen[idx] = true;
                    last = at;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    /// FIFO among equal timestamps holds for arbitrary interleavings.
    #[test]
    fn fifo_within_timestamp() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut rng = SimRng::seeded(0x0202);
            for _ in 0..128 {
                let times: Vec<u64> = (0..rng.uniform_u64(1, 100))
                    .map(|_| rng.uniform_u64(0, 5))
                    .collect();
                let mut q = EventQueue::with_kind(kind);
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime(t), i);
                }
                let mut last_seq_at: std::collections::HashMap<u64, usize> = Default::default();
                while let Some((at, idx)) = q.pop() {
                    if let Some(&prev) = last_seq_at.get(&at.0) {
                        assert!(idx > prev, "FIFO violated at t={}", at.0);
                    }
                    last_seq_at.insert(at.0, idx);
                }
            }
        }
    }

    /// Payloads above `INLINE_MAX_BYTES` switch both backends to the
    /// slot-store representation; the ordering contract must be
    /// indistinguishable from the inline one.
    #[test]
    fn slab_representation_is_equivalent() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        struct Big([u64; 12]);
        assert!(std::mem::size_of::<Big>() > super::INLINE_MAX_BYTES);
        let mut rng = SimRng::seeded(0x0404);
        for _ in 0..32 {
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
            let mut expect = Vec::new();
            for i in 0..300u64 {
                let at = SimTime(rng.uniform_u64(0, 1 << 20));
                heap.push(at, Big([i; 12]));
                wheel.push(at, Big([i; 12]));
                expect.push((at, i));
            }
            expect.sort_by_key(|&(at, i)| (at, i));
            for &(at, i) in &expect {
                assert_eq!(heap.pop(), Some((at, Big([i; 12]))));
                assert_eq!(wheel.pop(), Some((at, Big([i; 12]))));
            }
            assert_eq!(heap.pop(), None);
            assert_eq!(wheel.pop(), None);
        }
    }

    /// Both backends produce identical pop sequences for identical
    /// interleaved push/pop streams — the whole determinism contract,
    /// exercised head-to-head.
    #[test]
    fn heap_and_wheel_are_equivalent() {
        let mut rng = SimRng::seeded(0x0303);
        for round in 0..64 {
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
            let mut now = 0u64;
            let mut next_id = 0u64;
            for _ in 0..500 {
                if heap.is_empty() || rng.uniform_u64(0, 4) > 0 {
                    // Mix nearby and far-future timestamps across levels,
                    // with deliberate collisions for the FIFO tie-break.
                    let horizon = 1u64 << rng.uniform_u64(0, 36);
                    let at = SimTime(now + rng.uniform_u64(0, horizon.max(2)) / 2 * 2);
                    heap.push(at, next_id);
                    wheel.push(at, next_id);
                    next_id += 1;
                } else {
                    let a = heap.pop();
                    let b = wheel.pop();
                    assert_eq!(a, b, "divergence in round {round}");
                    now = a.map(|(t, _)| t.0).unwrap_or(now);
                }
            }
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(heap.stats(), wheel.stats());
        }
    }
}
