//! The event queue: a time-ordered priority queue with stable FIFO ordering
//! among events scheduled for the same instant.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Counters describing how hard the event queue worked during a run.
///
/// `scheduled`/`dispatched` are lifetime totals; `peak_depth` is the largest
/// number of simultaneously pending events, the figure long utilization
/// sweeps watch to confirm the kernel stays flat as load grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events pushed over the queue's lifetime.
    pub scheduled: u64,
    /// Events popped over the queue's lifetime.
    pub dispatched: u64,
    /// Maximum simultaneous pending events.
    pub peak_depth: usize,
    /// Currently pending events.
    pub depth: usize,
}

/// A deterministic discrete-event queue.
///
/// Events pop in non-decreasing time order; events at equal times pop in the
/// order they were pushed. This tie-break is what makes whole-simulation
/// replays bit-identical across runs and platforms.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled so far (including popped ones).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Total number of events dispatched so far.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Largest number of simultaneously pending events so far.
    pub fn peak_depth(&self) -> usize {
        self.peak
    }

    /// Snapshot of the queue's work counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.seq,
            dispatched: self.popped,
            peak_depth: self.peak,
            depth: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn counters_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), ());
        q.push(SimTime(3), ());
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::rng::SimRng;

    /// Popping never yields a time earlier than the previous pop, and
    /// every pushed event comes back exactly once.
    #[test]
    fn pops_are_monotone_and_complete() {
        let mut rng = SimRng::seeded(0x0101);
        for _ in 0..128 {
            let times: Vec<u64> = (0..rng.uniform_u64(1, 200))
                .map(|_| rng.uniform_u64(0, 1_000))
                .collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut seen = vec![false; times.len()];
            let mut last = SimTime::ZERO;
            while let Some((at, idx)) = q.pop() {
                assert!(at >= last);
                assert_eq!(at, SimTime(times[idx]));
                assert!(!seen[idx]);
                seen[idx] = true;
                last = at;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    /// FIFO among equal timestamps holds for arbitrary interleavings.
    #[test]
    fn fifo_within_timestamp() {
        let mut rng = SimRng::seeded(0x0202);
        for _ in 0..128 {
            let times: Vec<u64> = (0..rng.uniform_u64(1, 100))
                .map(|_| rng.uniform_u64(0, 5))
                .collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut last_seq_at: std::collections::HashMap<u64, usize> = Default::default();
            while let Some((at, idx)) = q.pop() {
                if let Some(&prev) = last_seq_at.get(&at.0) {
                    assert!(idx > prev, "FIFO violated at t={}", at.0);
                }
                last_seq_at.insert(at.0, idx);
            }
        }
    }
}
