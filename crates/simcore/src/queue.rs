//! The event queue: a time-ordered priority queue with stable FIFO ordering
//! among events scheduled for the same instant.
//!
//! Two interchangeable backends sit behind one API, selected by
//! [`QueueKind`]: a binary heap (the default) and a hierarchical
//! [`TimerWheel`](crate::wheel::TimerWheel) with `O(1)` insertion. Both
//! honor the same determinism contract — pops come in non-decreasing time
//! order and equal-time events pop in push order — so whole-simulation
//! replays are bit-identical regardless of which backend runs them.

use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry carrying its event inline — the representation for small
/// payloads, where moving the event during sifts costs nothing extra.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Payloads at or below this size stay inline in the priority structure;
/// larger ones move to the slot store and the structure orders 24-byte
/// `(at, seq, slot)` keys instead. The crossover sits where one extra
/// random store access per pop beats sifting/cascading fat entries —
/// measured on a depth-130 sliding-window workload, indirection cuts
/// queue time ~38% for ~96-byte simulation events but roughly doubles it
/// for bare `u64` payloads.
const INLINE_MAX_BYTES: usize = 32;

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary heap: `O(log n)` push/pop, the long-standing default.
    #[default]
    Heap,
    /// Hierarchical timer wheel: `O(1)` push, amortized-constant pop.
    Wheel,
}

/// Counters describing how hard the event queue worked during a run.
///
/// `scheduled`/`dispatched` are lifetime totals; `peak_depth` is the largest
/// number of simultaneously pending events, the figure long utilization
/// sweeps watch to confirm the kernel stays flat as load grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events pushed over the queue's lifetime.
    pub scheduled: u64,
    /// Events popped over the queue's lifetime.
    pub dispatched: u64,
    /// Maximum simultaneous pending events.
    pub peak_depth: usize,
    /// Currently pending events.
    pub depth: usize,
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(TimerWheel<E>),
    /// Heap over slot keys; events live in the queue's slot store.
    HeapSlab(BinaryHeap<Entry<u32>>),
    /// Wheel over slot keys; events live in the queue's slot store.
    WheelSlab(TimerWheel<u32>),
}

/// A deterministic discrete-event queue.
///
/// Events pop in non-decreasing time order; events at equal times pop in the
/// order they were pushed. This tie-break is what makes whole-simulation
/// replays bit-identical across runs, platforms, and backends.
pub struct EventQueue<E> {
    backend: Backend<E>,
    /// Free-list slot store for event payloads when the slab
    /// representation is active; unused (and unallocated) otherwise.
    store: Vec<Option<E>>,
    free: Vec<u32>,
    seq: u64,
    popped: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// A heap-backed queue (the default).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// Pre-size the backing storage for an expected pending-event depth,
    /// sparing short-lived worlds the first few growth reallocations.
    pub fn reserve(&mut self, depth: usize) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.reserve(depth),
            Backend::HeapSlab(heap) => heap.reserve(depth),
            Backend::Wheel(_) | Backend::WheelSlab(_) => {}
        }
        if let Backend::HeapSlab(_) | Backend::WheelSlab(_) = self.backend {
            self.store.reserve(depth);
            self.free.reserve(depth);
        }
    }

    /// A queue with an explicitly chosen backend. The in-memory
    /// representation (inline vs. slot-store) is picked from the payload
    /// size; both representations honor the same ordering contract, so
    /// the choice is invisible to everything but the profiler.
    pub fn with_kind(kind: QueueKind) -> Self {
        let slab = std::mem::size_of::<E>() > INLINE_MAX_BYTES;
        EventQueue {
            backend: match (kind, slab) {
                (QueueKind::Heap, false) => Backend::Heap(BinaryHeap::new()),
                (QueueKind::Wheel, false) => Backend::Wheel(TimerWheel::new()),
                (QueueKind::Heap, true) => Backend::HeapSlab(BinaryHeap::new()),
                (QueueKind::Wheel, true) => Backend::WheelSlab(TimerWheel::new()),
            },
            store: Vec::new(),
            free: Vec::new(),
            seq: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) | Backend::HeapSlab(_) => QueueKind::Heap,
            Backend::Wheel(_) | Backend::WheelSlab(_) => QueueKind::Wheel,
        }
    }

    fn store_insert(&mut self, event: E) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.store[slot as usize] = Some(event);
            slot
        } else {
            assert!(self.store.len() < u32::MAX as usize, "event queue overflow");
            self.store.push(Some(event));
            (self.store.len() - 1) as u32
        }
    }

    fn store_take(&mut self, slot: u32) -> E {
        let event = self.store[slot as usize]
            .take()
            .expect("backend keys and slot store in sync");
        self.free.push(slot);
        event
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Entry { at, seq, event }),
            Backend::Wheel(wheel) => wheel.push(at.0, seq, event),
            Backend::HeapSlab(_) => {
                let slot = self.store_insert(event);
                let Backend::HeapSlab(heap) = &mut self.backend else {
                    unreachable!()
                };
                heap.push(Entry {
                    at,
                    seq,
                    event: slot,
                });
            }
            Backend::WheelSlab(_) => {
                let slot = self.store_insert(event);
                let Backend::WheelSlab(wheel) = &mut self.backend else {
                    unreachable!()
                };
                wheel.push(at.0, seq, slot);
            }
        }
        let depth = self.len();
        if depth > self.peak {
            self.peak = depth;
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        enum Popped<E> {
            Inline(SimTime, E),
            Slab(SimTime, u32),
        }
        let popped = match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|e| Popped::Inline(e.at, e.event)),
            Backend::Wheel(wheel) => wheel.pop().map(|(t, _, ev)| Popped::Inline(SimTime(t), ev)),
            Backend::HeapSlab(heap) => heap.pop().map(|e| Popped::Slab(e.at, e.event)),
            Backend::WheelSlab(wheel) => wheel.pop().map(|(t, _, s)| Popped::Slab(SimTime(t), s)),
        }?;
        let out = match popped {
            Popped::Inline(at, event) => (at, event),
            Popped::Slab(at, slot) => (at, self.store_take(slot)),
        };
        self.popped += 1;
        Some(out)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.at),
            Backend::HeapSlab(heap) => heap.peek().map(|e| e.at),
            Backend::Wheel(wheel) => wheel.peek_time().map(SimTime),
            Backend::WheelSlab(wheel) => wheel.peek_time().map(SimTime),
        }
    }

    pub fn len(&self) -> usize {
        // Every push bumps `seq`, every pop bumps `popped`, and nothing
        // else touches either — so pending depth is their difference,
        // with no backend dispatch.
        (self.seq - self.popped) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled so far (including popped ones).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Total number of events dispatched so far.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Largest number of simultaneously pending events so far.
    pub fn peak_depth(&self) -> usize {
        self.peak
    }

    /// Snapshot of the queue's work counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.seq,
            dispatched: self.popped,
            peak_depth: self.peak,
            depth: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> [QueueKind; 2] {
        [QueueKind::Heap, QueueKind::Wheel]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime(30), "c");
            q.push(SimTime(10), "a");
            q.push(SimTime(20), "b");
            assert_eq!(q.pop(), Some((SimTime(10), "a")));
            assert_eq!(q.pop(), Some((SimTime(20), "b")));
            assert_eq!(q.pop(), Some((SimTime(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn equal_times_pop_fifo() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100 {
                q.push(SimTime(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((SimTime(5), i)));
            }
        }
    }

    #[test]
    fn counters_and_peek() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.kind(), kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(SimTime(7), ());
            q.push(SimTime(3), ());
            assert_eq!(q.peek_time(), Some(SimTime(3)));
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.scheduled_total(), 2);
            assert_eq!(q.popped_total(), 1);
            assert_eq!(q.peak_depth(), 2);
        }
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::rng::SimRng;

    /// Popping never yields a time earlier than the previous pop, and
    /// every pushed event comes back exactly once.
    #[test]
    fn pops_are_monotone_and_complete() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut rng = SimRng::seeded(0x0101);
            for _ in 0..128 {
                let times: Vec<u64> = (0..rng.uniform_u64(1, 200))
                    .map(|_| rng.uniform_u64(0, 1_000))
                    .collect();
                let mut q = EventQueue::with_kind(kind);
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime(t), i);
                }
                let mut seen = vec![false; times.len()];
                let mut last = SimTime::ZERO;
                while let Some((at, idx)) = q.pop() {
                    assert!(at >= last);
                    assert_eq!(at, SimTime(times[idx]));
                    assert!(!seen[idx]);
                    seen[idx] = true;
                    last = at;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    /// FIFO among equal timestamps holds for arbitrary interleavings.
    #[test]
    fn fifo_within_timestamp() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut rng = SimRng::seeded(0x0202);
            for _ in 0..128 {
                let times: Vec<u64> = (0..rng.uniform_u64(1, 100))
                    .map(|_| rng.uniform_u64(0, 5))
                    .collect();
                let mut q = EventQueue::with_kind(kind);
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime(t), i);
                }
                let mut last_seq_at: std::collections::HashMap<u64, usize> = Default::default();
                while let Some((at, idx)) = q.pop() {
                    if let Some(&prev) = last_seq_at.get(&at.0) {
                        assert!(idx > prev, "FIFO violated at t={}", at.0);
                    }
                    last_seq_at.insert(at.0, idx);
                }
            }
        }
    }

    /// Payloads above `INLINE_MAX_BYTES` switch both backends to the
    /// slot-store representation; the ordering contract must be
    /// indistinguishable from the inline one.
    #[test]
    fn slab_representation_is_equivalent() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        struct Big([u64; 12]);
        assert!(std::mem::size_of::<Big>() > super::INLINE_MAX_BYTES);
        let mut rng = SimRng::seeded(0x0404);
        for _ in 0..32 {
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
            let mut expect = Vec::new();
            for i in 0..300u64 {
                let at = SimTime(rng.uniform_u64(0, 1 << 20));
                heap.push(at, Big([i; 12]));
                wheel.push(at, Big([i; 12]));
                expect.push((at, i));
            }
            expect.sort_by_key(|&(at, i)| (at, i));
            for &(at, i) in &expect {
                assert_eq!(heap.pop(), Some((at, Big([i; 12]))));
                assert_eq!(wheel.pop(), Some((at, Big([i; 12]))));
            }
            assert_eq!(heap.pop(), None);
            assert_eq!(wheel.pop(), None);
        }
    }

    /// Both backends produce identical pop sequences for identical
    /// interleaved push/pop streams — the whole determinism contract,
    /// exercised head-to-head.
    #[test]
    fn heap_and_wheel_are_equivalent() {
        let mut rng = SimRng::seeded(0x0303);
        for round in 0..64 {
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
            let mut now = 0u64;
            let mut next_id = 0u64;
            for _ in 0..500 {
                if heap.is_empty() || rng.uniform_u64(0, 4) > 0 {
                    // Mix nearby and far-future timestamps across levels,
                    // with deliberate collisions for the FIFO tie-break.
                    let horizon = 1u64 << rng.uniform_u64(0, 36);
                    let at = SimTime(now + rng.uniform_u64(0, horizon.max(2)) / 2 * 2);
                    heap.push(at, next_id);
                    wheel.push(at, next_id);
                    next_id += 1;
                } else {
                    let a = heap.pop();
                    let b = wheel.pop();
                    assert_eq!(a, b, "divergence in round {round}");
                    now = a.map(|(t, _)| t.0).unwrap_or(now);
                }
            }
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(heap.stats(), wheel.stats());
        }
    }
}
