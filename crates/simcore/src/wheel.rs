//! A hierarchical timer wheel over absolute `u64` microsecond timestamps.
//!
//! Alternative backing store for [`crate::EventQueue`]: instead of a binary
//! heap (`O(log n)` per operation with poor locality at large depths), the
//! wheel buckets events by the position of the highest bit in which their
//! timestamp differs from the wheel's *cursor* — the classic
//! hashed-hierarchical scheme from Varghese & Lauck. Eleven levels of 64
//! slots cover the full 64-bit time domain (6 bits per level), so any
//! future timestamp lands in exactly one slot.
//!
//! Determinism contract (identical to the heap): events pop in
//! non-decreasing time order, and events with equal timestamps pop in
//! ascending sequence-key order **regardless of push order** — slots are
//! deques kept sorted by `(time, seq)` on insertion, so the parallel
//! kernel's machine-affine dispatch keys (which are not globally monotone
//! within a lane) tie-break exactly like the heap. Equal timestamps always
//! share one slot — their bits are identical, so every level/digit
//! computation agrees. The cursor only moves to timestamps of popped
//! events or slot lower bounds, never past a pending event, so the level
//! invariant `stored level == level_of(cursor, t)` holds for every
//! resident event.
//!
//! Costs: push is `O(slot)` worst case but `O(1)` for the common
//! append-at-back shape (ascending keys within a slot); pop amortizes
//! cascades to `O(levels)` per event; `peek_time` is `O(levels)` thanks
//! to per-slot minima maintained on push.

use std::collections::VecDeque;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
const LEVELS: usize = 11; // 11 * 6 = 66 bits ≥ the 64-bit time domain

/// Level whose digit contains the highest bit where `t` differs from
/// `cursor` (0 when equal — same-slot case).
#[inline]
fn level_of(cursor: u64, t: u64) -> usize {
    let diff = cursor ^ t;
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }
}

/// The 6-bit digit of `t` at `level`.
#[inline]
fn digit(level: usize, t: u64) -> usize {
    ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// Hierarchical timer wheel holding `(time, seq, event)` triples.
pub struct TimerWheel<E> {
    /// `LEVELS × SLOTS` FIFO buckets, row-major by level.
    slots: Vec<VecDeque<(u64, u64, E)>>,
    /// Minimum timestamp per occupied slot (meaningless when empty).
    slot_min: Vec<u64>,
    /// Per-level occupancy bitmaps.
    occupancy: [u64; LEVELS],
    /// Lower bound on every resident timestamp.
    cursor: u64,
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, VecDeque::new);
        TimerWheel {
            slots,
            slot_min: vec![0; LEVELS * SLOTS],
            occupancy: [0; LEVELS],
            cursor: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an event. `t` must not precede the last popped timestamp
    /// (the kernel never schedules into the past); earlier values are
    /// clamped to the cursor to keep the wheel's invariant intact.
    pub fn push(&mut self, t: u64, seq: u64, event: E) {
        debug_assert!(t >= self.cursor, "timer wheel push into the past");
        let t = t.max(self.cursor);
        self.place(t, seq, event);
        self.len += 1;
    }

    #[inline]
    fn place(&mut self, t: u64, seq: u64, event: E) {
        let level = level_of(self.cursor, t);
        let slot = digit(level, t);
        let idx = level * SLOTS + slot;
        let bit = 1u64 << slot;
        if self.occupancy[level] & bit == 0 {
            self.occupancy[level] |= bit;
            self.slot_min[idx] = t;
        } else if t < self.slot_min[idx] {
            self.slot_min[idx] = t;
        }
        // Keep the slot sorted by (time, seq). Pushes are usually
        // ascending within a slot, so the binary search lands at the back
        // and this degenerates to an O(1) append.
        let deque = &mut self.slots[idx];
        let pos = deque.partition_point(|&(et, es, _)| (et, es) < (t, seq));
        if pos == deque.len() {
            deque.push_back((t, seq, event));
        } else {
            deque.insert(pos, (t, seq, event));
        }
    }

    /// Lowest level with any pending event.
    #[inline]
    fn lowest_level(&self) -> Option<usize> {
        self.occupancy.iter().position(|&bits| bits != 0)
    }

    /// Earliest pending timestamp.
    pub fn peek_time(&self) -> Option<u64> {
        let level = self.lowest_level()?;
        let slot = self.occupancy[level].trailing_zeros() as usize;
        Some(self.slot_min[level * SLOTS + slot])
    }

    /// `(time, seq)` of the event the next [`pop`](TimerWheel::pop) would
    /// return, without mutating the wheel (no cascade, cursor untouched).
    ///
    /// The earliest event provably lives in the lowest occupied slot of
    /// the lowest occupied level (any lower timestamp would have a lower
    /// digit there), and since slots are kept sorted by `(time, seq)` on
    /// insertion its front entry *is* the global minimum — exact for
    /// arbitrary (non-monotone) sequence streams, including requeues.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        let level = self.lowest_level()?;
        let slot = self.occupancy[level].trailing_zeros() as usize;
        let idx = level * SLOTS + slot;
        self.slots[idx].front().map(|&(t, seq, _)| (t, seq))
    }

    /// Visit every resident event in unspecified (slot) order.
    pub fn for_each(&self, mut f: impl FnMut(u64, u64, &E)) {
        for slot in &self.slots {
            for (t, seq, event) in slot {
                f(*t, *seq, event);
            }
        }
    }

    /// Remove the earliest event; equal times pop in push order.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let level = self.lowest_level().expect("len > 0 implies occupancy");
            let slot = self.occupancy[level].trailing_zeros() as usize;
            let idx = level * SLOTS + slot;
            if level == 0 {
                // A level-0 slot holds exactly one timestamp (all higher
                // bits match the cursor) and the deque is (time, seq)-
                // sorted, so front-of-deque is the global minimum.
                let (t, seq, event) = self.slots[idx].pop_front().expect("occupied slot");
                if self.slots[idx].is_empty() {
                    self.occupancy[0] &= !(1u64 << slot);
                }
                self.cursor = t;
                self.len -= 1;
                return Some((t, seq, event));
            }
            // Cascade: advance the cursor to the slot's time base and
            // redistribute its events to lower levels, preserving deque
            // (= sequence) order.
            let drained = std::mem::take(&mut self.slots[idx]);
            self.occupancy[level] &= !(1u64 << slot);
            let level_shift = SLOT_BITS * level as u32;
            let upper_shift = level_shift + SLOT_BITS;
            let upper = if upper_shift >= 64 {
                0
            } else {
                (self.cursor >> upper_shift) << upper_shift
            };
            self.cursor = upper | ((slot as u64) << level_shift);
            for (t, seq, event) in drained {
                debug_assert!(t >= self.cursor);
                debug_assert!(level_of(self.cursor, t) < level);
                self.place(t, seq, event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(30, 0, "c");
        w.push(10, 1, "a");
        w.push(20, 2, "b");
        w.push(10, 3, "a2");
        assert_eq!(w.peek_time(), Some(10));
        assert_eq!(w.pop(), Some((10, 1, "a")));
        assert_eq!(w.pop(), Some((10, 3, "a2")));
        assert_eq!(w.pop(), Some((20, 2, "b")));
        assert_eq!(w.pop(), Some((30, 0, "c")));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn distant_timestamps_cascade_correctly() {
        let mut w = TimerWheel::new();
        // Spread across many levels, including near the top of u64.
        let times = [
            0u64,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 30,
            (1 << 30) + 1,
            1 << 45,
            u64::MAX - 1,
            u64::MAX,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64, t);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((t, _, v)) = w.pop() {
            assert_eq!(t, v);
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, times.len());
    }

    /// Events beyond the top wheel level's horizon (bits ≥ 60, i.e. past
    /// level 10's digit range relative to a near-zero cursor) must still
    /// land in exactly one slot, cascade down as the cursor advances, and
    /// stay bit-identical with the reference heap — including FIFO order
    /// among equal far-future timestamps.
    #[test]
    fn far_future_beyond_top_horizon_matches_heap() {
        use crate::queue::{EventQueue, QueueKind};
        use crate::time::SimTime;

        // Raw wheel: a cluster of far-future timestamps, some equal, some
        // differing only in the very highest bits, pushed interleaved with
        // near-term events.
        let far = u64::MAX - 64;
        let times = [
            5u64,
            far,
            far,
            far + 1,
            u64::MAX,
            6,
            far,
            1 << 63,
            (1 << 63) + 1,
            u64::MAX,
        ];
        let mut w = TimerWheel::new();
        let mut heap_order: Vec<(u64, u64)> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64, i as u64);
            heap_order.push((t, i as u64));
        }
        heap_order.sort();
        for &(t, i) in &heap_order {
            assert_eq!(w.pop(), Some((t, i, i)), "wheel diverged at t={t}");
        }
        assert!(w.is_empty());

        // Same shape through the EventQueue facade, heap vs wheel
        // head-to-head, with pops interleaved so the cursor has to chase
        // the far-future cluster through every level.
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
        for (i, &t) in times.iter().enumerate() {
            heap.push(SimTime(t), i);
            wheel.push(SimTime(t), i);
            if i % 3 == 2 {
                assert_eq!(heap.pop(), wheel.pop());
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(heap.stats(), wheel.stats());
    }

    /// `peek_key` must name exactly the `(time, seq)` the next pop
    /// returns, across cascades and far-future slots, for monotone
    /// sequence streams (the shard-lane usage pattern).
    #[test]
    fn peek_key_predicts_next_pop() {
        let mut rng = SimRng::seeded(0x99);
        let mut w = TimerWheel::new();
        assert_eq!(w.peek_key(), None);
        let mut seq = 0u64;
        let mut last = 0u64;
        for _ in 0..5_000 {
            if w.is_empty() || rng.uniform_u64(0, 3) > 0 {
                let horizon = 1u64 << rng.uniform_u64(0, 40);
                // Deliberate collisions: half the pushes reuse `last`.
                let t = if rng.uniform_u64(0, 2) == 0 {
                    last
                } else {
                    last + rng.uniform_u64(0, horizon)
                };
                w.push(t, seq, seq);
                seq += 1;
            } else {
                let key = w.peek_key().unwrap();
                let (t, s, _) = w.pop().unwrap();
                assert_eq!(key, (t, s));
                last = t;
            }
        }
        while let Some(key) = w.peek_key() {
            let (t, s, _) = w.pop().unwrap();
            assert_eq!(key, (t, s));
        }
    }

    /// Non-monotone sequence streams — the lane kernel's machine-affine
    /// keys — must still pop in exact `(time, seq)` order and agree with
    /// the heap, with `peek_key` staying exact throughout.
    #[test]
    fn out_of_order_seqs_tie_break_like_the_heap() {
        let mut w = TimerWheel::new();
        // Equal timestamps pushed with descending / shuffled seqs.
        for &(t, s) in &[
            (50u64, 9u64),
            (50, 2),
            (10, 7),
            (50, 4),
            (10, 1),
            (200, 3),
            (10, 8),
            (200, 0),
        ] {
            w.push(t, s, (t, s));
        }
        let mut expect: Vec<(u64, u64)> = vec![
            (50, 9),
            (50, 2),
            (10, 7),
            (50, 4),
            (10, 1),
            (200, 3),
            (10, 8),
            (200, 0),
        ];
        expect.sort();
        for &(t, s) in &expect {
            assert_eq!(w.peek_key(), Some((t, s)));
            assert_eq!(w.pop(), Some((t, s, (t, s))));
        }
        assert!(w.is_empty());

        // Randomized head-to-head vs a sorted reference, arbitrary seqs.
        let mut rng = SimRng::seeded(0xABCD);
        let mut w = TimerWheel::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut last_pop = 0u64;
        for _ in 0..4_000 {
            if w.is_empty() || rng.uniform_u64(0, 3) > 0 {
                let shift = rng.uniform_u64(0, 24);
                let t = last_pop + rng.uniform_u64(0, 1 << shift);
                let s = rng.uniform_u64(0, u64::MAX - 1);
                w.push(t, s, ());
                let pos = reference.partition_point(|&k| k < (t, s));
                reference.insert(pos, (t, s));
            } else {
                let key = w.peek_key().unwrap();
                let (t, s, ()) = w.pop().unwrap();
                assert_eq!(key, (t, s));
                assert_eq!(reference.remove(0), (t, s));
                last_pop = t;
            }
        }
        while let Some((t, s, ())) = w.pop() {
            assert_eq!(reference.remove(0), (t, s));
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_monotone() {
        let mut rng = SimRng::seeded(0x77);
        let mut w = TimerWheel::new();
        let mut seq = 0u64;
        let mut last = 0u64;
        for _ in 0..10_000 {
            if w.is_empty() || rng.uniform_u64(0, 3) > 0 {
                let horizon = 1u64 << rng.uniform_u64(0, 40);
                let t = last + rng.uniform_u64(0, horizon);
                w.push(t, seq, seq);
                seq += 1;
            } else {
                let (t, _, _) = w.pop().unwrap();
                assert!(t >= last);
                assert_eq!(w.peek_time().is_some(), !w.is_empty());
                last = t;
            }
        }
        while let Some((t, _, _)) = w.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
