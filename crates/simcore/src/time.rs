//! Virtual time.
//!
//! Time is kept in integer microseconds to make event ordering exact and
//! platform-independent; floating point enters only at the reporting edge.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Convert from fractional seconds, saturating at zero for negatives.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Duration(0)
        } else {
            Duration((s * 1e6).round() as u64)
        }
    }

    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor (used by the processor-sharing model).
    pub fn mul_f64(self, k: f64) -> Duration {
        debug_assert!(k >= 0.0, "negative time scale");
        Duration((self.0 as f64 * k).round() as u64)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// An instant of virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier` (panics in debug if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> Duration {
        debug_assert!(earlier <= self, "time went backwards");
        Duration(self.0 - earlier.0)
    }

    /// Saturating version of [`SimTime::since`].
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert!((Duration::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_secs(1);
        assert_eq!(t.as_micros(), 1_000_000);
        assert_eq!(
            (t + Duration::from_millis(500)).since(t),
            Duration::from_millis(500)
        );
        assert_eq!(
            Duration::from_secs(1).saturating_sub(Duration::from_secs(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn scaling() {
        assert_eq!(
            Duration::from_secs(1).mul_f64(2.5),
            Duration::from_micros(2_500_000)
        );
        assert_eq!(Duration::from_secs(1).mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Duration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimTime(2_000_000).to_string(), "T+2.000000s");
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    #[cfg(debug_assertions)]
    fn since_panics_when_reversed() {
        let _ = SimTime(1).since(SimTime(2));
    }
}
