//! Structured event tracing.
//!
//! The trace is the simulation's observable record: integration tests
//! assert that mechanism walk-throughs (e.g. the paper's Figure 5 and
//! Figure 6 step sequences) happen in the documented order, and the
//! experiment harness derives elapsed times and utilization from it.
//!
//! Recording is allocation-free on the disabled path: topics are
//! [`Topic`]s (a `&'static str` for the overwhelmingly common literal
//! case, no interning table needed), and details are accepted as
//! `impl Display` — callers pass `format_args!(…)` and the text is only
//! materialized when the recorder is actually storing events.
//!
//! Storage is a pluggable [`TraceSink`]: full in-memory (the default for
//! enabled recorders), a bounded *ring* retaining only the most recent
//! events, or a *streaming* sink rendering each event to a byte stream
//! incrementally — bounded memory for runs too big to hold, with the
//! streamed bytes identical to what [`TraceRecorder::render`] would have
//! produced in memory (see `crate::sink`).

use crate::queue::QueueStats;
use crate::sink::{FullSink, RingSink, StreamSink, TraceSink};
use crate::time::SimTime;
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;

/// A trace topic: either an interned `&'static str` (zero-allocation, the
/// normal case for literal topics) or an owned string (parsed traces,
/// dynamically built topics). Compares, hashes, and derefs as a `str`.
#[derive(Debug, Clone)]
pub enum Topic {
    Static(&'static str),
    Owned(Box<str>),
}

impl Topic {
    pub fn as_str(&self) -> &str {
        match self {
            Topic::Static(s) => s,
            Topic::Owned(s) => s,
        }
    }
}

impl Deref for Topic {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Topic {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Topic {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for Topic {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for Topic {}

impl PartialEq<str> for Topic {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Topic {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl std::hash::Hash for Topic {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&'static str> for Topic {
    fn from(s: &'static str) -> Topic {
        Topic::Static(s)
    }
}

impl From<String> for Topic {
    fn from(s: String) -> Topic {
        Topic::Owned(s.into_boxed_str())
    }
}

impl From<Box<str>> for Topic {
    fn from(s: Box<str>) -> Topic {
        Topic::Owned(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub at: SimTime,
    /// Dot-separated topic, e.g. `rsh.intercept`, `broker.grant`,
    /// `pvm.slave.refused`.
    pub topic: Topic,
    /// Free-form detail (host names, ids).
    pub detail: String,
}

/// Render one event exactly as [`TraceRecorder::render`] does — the one
/// formatting routine shared by in-memory rendering and the streaming
/// sink, so streamed bytes and rendered strings can never drift apart.
pub(crate) fn render_event_into(out: &mut String, e: &TraceEvent) {
    use fmt::Write as _;
    let _ = writeln!(
        out,
        "{:>14}  {:<28} {}",
        e.at.to_string(),
        e.topic,
        e.detail
    );
}

/// An append-only trace with query helpers, storing into a [`TraceSink`]
/// (`None` = disabled: every record is a single-branch no-op).
#[derive(Debug, Default)]
pub struct TraceRecorder {
    sink: Option<Box<dyn TraceSink>>,
}

impl TraceRecorder {
    /// A recorder that stores every event in memory.
    pub fn enabled() -> Self {
        TraceRecorder {
            sink: Some(Box::new(FullSink::new())),
        }
    }

    /// A recorder that drops everything (for long utilization runs where
    /// only metrics matter).
    pub fn disabled() -> Self {
        TraceRecorder { sink: None }
    }

    /// A bounded recorder keeping (at least) the `cap` most recent events:
    /// the tail a long soak run wants for post-mortems, without the
    /// unbounded growth of a full trace. At most `2 × cap − 1` events are
    /// resident at any instant.
    pub fn ring(cap: usize) -> Self {
        TraceRecorder {
            sink: Some(Box::new(RingSink::new(cap))),
        }
    }

    /// A recorder streaming every event to `out` as rendered text (the
    /// exact bytes [`TraceRecorder::render`] would produce), keeping only
    /// the most recent `tail_cap` events in memory. Hand it a buffered
    /// writer — the sink writes line-at-a-time. This is how runs too
    /// large to hold a trace in memory stay fully observable.
    pub fn streaming(out: Box<dyn std::io::Write + Send>, tail_cap: usize) -> Self {
        TraceRecorder {
            sink: Some(Box::new(StreamSink::new(out, tail_cap))),
        }
    }

    /// A recorder over an explicit sink implementation.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        TraceRecorder { sink: Some(sink) }
    }

    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Total events irrecoverably lost: ring trimming for in-memory
    /// recorders, failed downstream writes for streaming ones. (An event
    /// evicted from a streaming recorder's in-memory tail is *not* lost —
    /// it lives in the stream.)
    pub fn dropped_events(&self) -> u64 {
        self.sink.as_deref().map_or(0, TraceSink::dropped)
    }

    /// Total events ever recorded, resident in memory or not.
    pub fn recorded_events(&self) -> u64 {
        self.sink.as_deref().map_or(0, TraceSink::recorded)
    }

    /// Record an event (no-op when disabled). The detail is accepted as
    /// `impl Display` and only formatted when the recorder is enabled —
    /// pass `format_args!(…)` to keep the disabled path allocation-free.
    pub fn record(&mut self, at: SimTime, topic: impl Into<Topic>, detail: impl fmt::Display) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.accept(TraceEvent {
                at,
                topic: topic.into(),
                detail: detail.to_string(),
            });
        }
    }

    /// Move every event out of `staging` into this recorder, preserving
    /// order and applying this recorder's retention policy event by event
    /// — so a trace assembled through staging recorders is byte-identical
    /// to one recorded directly, ring trimming and streaming included.
    /// The sharded kernel records each dispatch into a per-shard staging
    /// recorder and absorbs it here, merging per-shard streams back into
    /// the canonical dispatch order. When this recorder is disabled the
    /// staged events are discarded.
    pub fn absorb(&mut self, staging: &mut TraceRecorder) {
        let Some(staged) = staging.sink.as_deref_mut() else {
            return;
        };
        let events = staged.take_events();
        if let Some(sink) = self.sink.as_deref_mut() {
            for e in events {
                sink.accept(e);
            }
        }
    }

    /// Move every staged event out as a batch, preserving order (empty
    /// when disabled). The threaded kernel calls this after each lane
    /// dispatch to tag the dispatch's events with its `(time, key)`, then
    /// replays the batches into the canonical recorder in merged key
    /// order via [`TraceRecorder::absorb_events`] at the window barrier.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.sink
            .as_deref_mut()
            .map_or_else(Vec::new, TraceSink::take_events)
    }

    /// Append a batch of already-recorded events in order, applying this
    /// recorder's retention policy event by event — the batched
    /// counterpart of [`TraceRecorder::absorb`], byte-identical to having
    /// recorded the events directly. Discards the batch when disabled.
    pub fn absorb_events(&mut self, events: Vec<TraceEvent>) {
        if let Some(sink) = self.sink.as_deref_mut() {
            for e in events {
                sink.accept(e);
            }
        }
    }

    /// All retained events, in recording order (which equals time order,
    /// since the kernel records as it dispatches). In ring or streaming
    /// mode this is the recent tail, not the full history.
    pub fn events(&self) -> &[TraceEvent] {
        self.sink.as_deref().map_or(&[], TraceSink::events)
    }

    /// Append a `#` comment line to the downstream stream, if this
    /// recorder streams (no-op otherwise — comments are stream metadata,
    /// not events).
    pub fn comment(&mut self, line: &str) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.comment(line);
        }
    }

    /// Flush any buffered downstream output.
    pub fn flush(&mut self) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.flush();
        }
    }

    /// Close out a streaming trace: append the same stats line
    /// [`TraceRecorder::render_with_stats`] puts at the top — as a
    /// trailing `#` footer, since a stream cannot be prepended to — and
    /// flush. [`parse_rendered`] skips comment lines wherever they
    /// appear, so a finished stream parses exactly like a rendered dump.
    pub fn finish_stream(&mut self, stats: &QueueStats) {
        let line = format!(
            "# rb-trace v1 events={} dropped={} scheduled={} dispatched={} peak_depth={}",
            self.recorded_events(),
            self.dropped_events(),
            stats.scheduled,
            stats.dispatched,
            stats.peak_depth,
        );
        self.comment(&line);
        self.flush();
    }

    /// Events whose topic starts with `prefix`.
    pub fn with_topic<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events()
            .iter()
            .filter(move |e| e.topic.starts_with(prefix))
    }

    /// First event with the exact topic.
    pub fn first(&self, topic: &str) -> Option<&TraceEvent> {
        self.events().iter().find(|e| e.topic == topic)
    }

    /// Last event with the exact topic.
    pub fn last(&self, topic: &str) -> Option<&TraceEvent> {
        self.events().iter().rev().find(|e| e.topic == topic)
    }

    /// Count of events with the exact topic.
    pub fn count(&self, topic: &str) -> usize {
        self.events().iter().filter(|e| e.topic == topic).count()
    }

    /// Assert (returning `Result` for test ergonomics) that events with the
    /// given exact topics occur in the given relative order; other events
    /// may interleave freely.
    pub fn check_order(&self, topics: &[&str]) -> Result<(), String> {
        let mut idx = 0;
        for e in self.events() {
            if idx < topics.len() && e.topic == topics[idx] {
                idx += 1;
            }
        }
        if idx == topics.len() {
            Ok(())
        } else {
            Err(format!(
                "expected topic '{}' (position {idx}) was not found in order; trace has {} events",
                topics[idx],
                self.events().len()
            ))
        }
    }

    /// Render the trace as text lines (for example binaries and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            render_event_into(&mut out, e);
        }
        out
    }

    /// Render with a `#`-prefixed header carrying the kernel's event-queue
    /// work counters; [`parse_rendered`] skips such comment lines, and
    /// `rblint` echoes them back.
    pub fn render_with_stats(&self, stats: &QueueStats) -> String {
        format!(
            "# rb-trace v1 events={} dropped={} scheduled={} dispatched={} peak_depth={}\n{}",
            self.events().len(),
            self.dropped_events(),
            stats.scheduled,
            stats.dispatched,
            stats.peak_depth,
            self.render()
        )
    }

    /// Rebuild a recorder from events parsed or recorded elsewhere (the
    /// inverse of [`TraceRecorder::render`] via [`parse_rendered`]; used by
    /// offline trace tooling such as `rblint`).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        TraceRecorder {
            sink: Some(Box::new(FullSink::with_events(events))),
        }
    }
}

/// Parse one line of [`TraceRecorder::render`] output back into a
/// [`TraceEvent`]. Blank lines and `#` comment/header lines yield `None`.
fn parse_rendered_line(line: &str) -> Result<Option<TraceEvent>, String> {
    let rest = line.trim_start();
    if rest.is_empty() || rest.starts_with('#') {
        return Ok(None);
    }
    let (time_tok, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("missing topic in line: {line:?}"))?;
    let secs: f64 = time_tok
        .strip_prefix("T+")
        .and_then(|s| s.strip_suffix('s'))
        .ok_or_else(|| format!("bad time {time_tok:?}"))?
        .parse()
        .map_err(|e| format!("bad time {time_tok:?}: {e}"))?;
    let rest = rest.trim_start();
    let (topic, detail) = match rest.split_once(char::is_whitespace) {
        Some((t, d)) => (t, d.trim_start()),
        None => (rest, ""),
    };
    if topic.is_empty() {
        return Err(format!("missing topic in line: {line:?}"));
    }
    Ok(Some(TraceEvent {
        at: SimTime((secs * 1e6).round() as u64),
        topic: topic.to_string().into(),
        detail: detail.trim_end().to_string(),
    }))
}

/// Parse a full [`TraceRecorder::render`] dump back into events.
pub fn parse_rendered(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .enumerate()
        .filter_map(|(n, line)| match parse_rendered_line(line) {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => Some(Err(format!("line {}: {e}", n + 1))),
        })
        .collect()
}

/// Parse the `# rb-trace v1 …` stats line out of a rendered dump
/// (header or streamed footer): `(events, dropped, scheduled,
/// dispatched, peak_depth)` in emission order. `None` when no stats
/// comment is present.
pub fn parse_stats_comment(text: &str) -> Option<TraceFileStats> {
    for line in text.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix('#') else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(fields) = rest.strip_prefix("rb-trace v1") else {
            continue;
        };
        let mut stats = TraceFileStats::default();
        for tok in fields.split_whitespace() {
            let Some((k, v)) = tok.split_once('=') else {
                continue;
            };
            let Ok(v) = v.parse::<u64>() else { continue };
            match k {
                "events" => stats.events = v,
                "dropped" => stats.dropped = v,
                "scheduled" => stats.scheduled = v,
                "dispatched" => stats.dispatched = v,
                "peak_depth" => stats.peak_depth = v,
                _ => {}
            }
        }
        return Some(stats);
    }
    None
}

/// The engine-health counters a `# rb-trace v1` stats comment carries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceFileStats {
    pub events: u64,
    pub dropped: u64,
    pub scheduled: u64,
    pub dispatched: u64,
    pub peak_depth: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::enabled();
        t.record(SimTime(1), "a.x", "one");
        t.record(SimTime(2), "b", "two");
        t.record(SimTime(3), "a.y", "three");
        t.record(SimTime(4), "b", "four");
        t
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceRecorder::disabled();
        t.record(SimTime(1), "a", "x");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn lazy_details_are_not_formatted_when_disabled() {
        struct Bomb;
        impl fmt::Display for Bomb {
            fn fmt(&self, _: &mut fmt::Formatter<'_>) -> fmt::Result {
                panic!("detail formatted on the disabled path");
            }
        }
        let mut t = TraceRecorder::disabled();
        t.record(SimTime(1), "a", Bomb);
        assert!(t.events().is_empty());
    }

    #[test]
    fn format_args_details_record() {
        let mut t = TraceRecorder::enabled();
        let host = "n01";
        t.record(SimTime(1), "x", format_args!("{host} up={}", true));
        assert_eq!(t.events()[0].detail, "n01 up=true");
    }

    #[test]
    fn topics_compare_as_strings() {
        let a: Topic = "broker.grant".into();
        let b: Topic = String::from("broker.grant").into();
        assert_eq!(a, b);
        assert_eq!(a, "broker.grant");
        assert!(a.starts_with("broker."));
        assert_eq!(a.to_string(), "broker.grant");
    }

    #[test]
    fn ring_mode_keeps_the_recent_tail() {
        let mut t = TraceRecorder::ring(10);
        for i in 0..100u64 {
            t.record(SimTime(i), "tick", format_args!("{i}"));
        }
        let events = t.events();
        assert!(events.len() >= 10, "{}", events.len());
        assert!(events.len() < 20, "{}", events.len());
        // The newest events are always retained, in order.
        assert_eq!(events.last().unwrap().detail, "99");
        let details: Vec<u64> = events.iter().map(|e| e.detail.parse().unwrap()).collect();
        assert!(details.windows(2).all(|w| w[0] + 1 == w[1]));
        assert_eq!(t.recorded_events(), 100);
    }

    #[test]
    fn absorb_is_indistinguishable_from_direct_recording() {
        // Route half the events through a staging recorder (as the
        // sharded kernel does per dispatch) and compare against recording
        // straight into an identical ring recorder: retained events and
        // the dropped counter must match exactly.
        let mut direct = TraceRecorder::ring(5);
        let mut merged = TraceRecorder::ring(5);
        let mut staging = TraceRecorder::enabled();
        for i in 0..40u64 {
            direct.record(SimTime(i), "tick", format_args!("{i}"));
            if i % 2 == 0 {
                merged.record(SimTime(i), "tick", format_args!("{i}"));
            } else {
                staging.record(SimTime(i), "tick", format_args!("{i}"));
                merged.absorb(&mut staging);
                assert!(staging.events().is_empty());
            }
        }
        assert_eq!(merged.events(), direct.events());
        assert_eq!(merged.dropped_events(), direct.dropped_events());

        // A disabled recorder discards absorbed events.
        let mut off = TraceRecorder::disabled();
        staging.record(SimTime(1), "tick", "x");
        off.absorb(&mut staging);
        assert!(off.events().is_empty());
        assert!(staging.events().is_empty());
    }

    #[test]
    fn streaming_recorder_emits_render_bytes() {
        use std::sync::Arc;
        use std::sync::Mutex;

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let mut streamed = TraceRecorder::streaming(Box::new(buf.clone()), 8);
        let mut full = TraceRecorder::enabled();
        let mut staging = TraceRecorder::enabled();
        for i in 0..64u64 {
            full.record(SimTime(i * 10), "tick", format_args!("{i}"));
            // Half through staging + absorb, as the sharded kernel would.
            if i % 2 == 0 {
                streamed.record(SimTime(i * 10), "tick", format_args!("{i}"));
            } else {
                staging.record(SimTime(i * 10), "tick", format_args!("{i}"));
                streamed.absorb(&mut staging);
            }
        }
        let bytes = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(bytes, full.render());
        assert_eq!(streamed.recorded_events(), 64);
        assert_eq!(streamed.dropped_events(), 0);
        // Footer: stats travel as a trailing comment the parser skips.
        let stats = QueueStats {
            scheduled: 64,
            dispatched: 64,
            peak_depth: 9,
            depth: 0,
        };
        streamed.finish_stream(&stats);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.ends_with("peak_depth=9\n"), "{text:?}");
        let parsed = parse_rendered(&text).unwrap();
        assert_eq!(parsed, parse_rendered(&full.render()).unwrap());
        let fs = parse_stats_comment(&text).unwrap();
        assert_eq!(fs.events, 64);
        assert_eq!(fs.peak_depth, 9);
    }

    #[test]
    fn queries() {
        let t = sample();
        assert_eq!(t.with_topic("a.").count(), 2);
        assert_eq!(t.count("b"), 2);
        assert_eq!(t.first("b").unwrap().detail, "two");
        assert_eq!(t.last("b").unwrap().detail, "four");
        assert!(t.first("zzz").is_none());
    }

    #[test]
    fn order_checking() {
        let t = sample();
        assert!(t.check_order(&["a.x", "a.y", "b"]).is_ok());
        assert!(t.check_order(&["a.x", "b", "b"]).is_ok());
        let err = t.check_order(&["a.y", "a.x"]).unwrap_err();
        assert!(err.contains("a.x"));
    }

    #[test]
    fn render_contains_topics() {
        let s = sample().render();
        assert!(s.contains("a.x"));
        assert!(s.contains("four"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut t = sample();
        t.record(SimTime(5_000_000), "no.detail", "");
        t.record(SimTime(6_500_000), "spaced", "n01 -> j3 (g7)");
        let parsed = parse_rendered(&t.render()).unwrap();
        assert_eq!(parsed, t.events());
        let rebuilt = TraceRecorder::from_events(parsed);
        assert_eq!(rebuilt.render(), t.render());
    }

    #[test]
    fn header_renders_and_parses_transparently() {
        let t = sample();
        let stats = QueueStats {
            scheduled: 7,
            dispatched: 5,
            peak_depth: 3,
            depth: 2,
        };
        let text = t.render_with_stats(&stats);
        assert!(text.starts_with("# rb-trace v1 "));
        assert!(text.contains("peak_depth=3"));
        let parsed = parse_rendered(&text).unwrap();
        assert_eq!(parsed, t.events());
        let fs = parse_stats_comment(&text).unwrap();
        assert_eq!(fs.events, 4);
        assert_eq!(fs.scheduled, 7);
        assert_eq!(fs.dispatched, 5);
        assert_eq!(fs.peak_depth, 3);
        assert!(parse_stats_comment("plain text\n").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_rendered("not a trace line\n").is_err());
        assert!(parse_rendered("T+1.000000s\n").is_err());
        assert!(parse_rendered("").unwrap().is_empty());
        assert!(parse_rendered("# just a comment\n").unwrap().is_empty());
    }
}
