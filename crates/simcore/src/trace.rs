//! Structured event tracing.
//!
//! The trace is the simulation's observable record: integration tests
//! assert that mechanism walk-throughs (e.g. the paper's Figure 5 and
//! Figure 6 step sequences) happen in the documented order, and the
//! experiment harness derives elapsed times and utilization from it.

use crate::time::SimTime;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub at: SimTime,
    /// Dot-separated topic, e.g. `rsh.intercept`, `broker.grant`,
    /// `pvm.slave.refused`.
    pub topic: String,
    /// Free-form detail (host names, ids).
    pub detail: String,
}

/// An append-only trace with query helpers.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceRecorder {
    /// A recorder that stores events.
    pub fn enabled() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A recorder that drops everything (for long utilization runs where
    /// only metrics matter).
    pub fn disabled() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, topic: impl Into<String>, detail: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                topic: topic.into(),
                detail: detail.into(),
            });
        }
    }

    /// All events, in recording order (which equals time order, since the
    /// kernel records as it dispatches).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose topic starts with `prefix`.
    pub fn with_topic<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.topic.starts_with(prefix))
    }

    /// First event with the exact topic.
    pub fn first(&self, topic: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.topic == topic)
    }

    /// Last event with the exact topic.
    pub fn last(&self, topic: &str) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.topic == topic)
    }

    /// Count of events with the exact topic.
    pub fn count(&self, topic: &str) -> usize {
        self.events.iter().filter(|e| e.topic == topic).count()
    }

    /// Assert (returning `Result` for test ergonomics) that events with the
    /// given exact topics occur in the given relative order; other events
    /// may interleave freely.
    pub fn check_order(&self, topics: &[&str]) -> Result<(), String> {
        let mut idx = 0;
        for e in &self.events {
            if idx < topics.len() && e.topic == topics[idx] {
                idx += 1;
            }
        }
        if idx == topics.len() {
            Ok(())
        } else {
            Err(format!(
                "expected topic '{}' (position {idx}) was not found in order; trace has {} events",
                topics[idx],
                self.events.len()
            ))
        }
    }

    /// Render the trace as text lines (for example binaries and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>14}  {:<28} {}\n",
                e.at.to_string(),
                e.topic,
                e.detail
            ));
        }
        out
    }

    /// Rebuild a recorder from events parsed or recorded elsewhere (the
    /// inverse of [`TraceRecorder::render`] via [`parse_rendered`]; used by
    /// offline trace tooling such as `rblint`).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        TraceRecorder {
            events,
            enabled: true,
        }
    }
}

/// Parse one line of [`TraceRecorder::render`] output back into a
/// [`TraceEvent`]. Blank lines yield `None`.
fn parse_rendered_line(line: &str) -> Result<Option<TraceEvent>, String> {
    let rest = line.trim_start();
    if rest.is_empty() {
        return Ok(None);
    }
    let (time_tok, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("missing topic in line: {line:?}"))?;
    let secs: f64 = time_tok
        .strip_prefix("T+")
        .and_then(|s| s.strip_suffix('s'))
        .ok_or_else(|| format!("bad time {time_tok:?}"))?
        .parse()
        .map_err(|e| format!("bad time {time_tok:?}: {e}"))?;
    let rest = rest.trim_start();
    let (topic, detail) = match rest.split_once(char::is_whitespace) {
        Some((t, d)) => (t, d.trim_start()),
        None => (rest, ""),
    };
    if topic.is_empty() {
        return Err(format!("missing topic in line: {line:?}"));
    }
    Ok(Some(TraceEvent {
        at: SimTime((secs * 1e6).round() as u64),
        topic: topic.to_string(),
        detail: detail.trim_end().to_string(),
    }))
}

/// Parse a full [`TraceRecorder::render`] dump back into events.
pub fn parse_rendered(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .enumerate()
        .filter_map(|(n, line)| match parse_rendered_line(line) {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => Some(Err(format!("line {}: {e}", n + 1))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::enabled();
        t.record(SimTime(1), "a.x", "one");
        t.record(SimTime(2), "b", "two");
        t.record(SimTime(3), "a.y", "three");
        t.record(SimTime(4), "b", "four");
        t
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceRecorder::disabled();
        t.record(SimTime(1), "a", "x");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn queries() {
        let t = sample();
        assert_eq!(t.with_topic("a.").count(), 2);
        assert_eq!(t.count("b"), 2);
        assert_eq!(t.first("b").unwrap().detail, "two");
        assert_eq!(t.last("b").unwrap().detail, "four");
        assert!(t.first("zzz").is_none());
    }

    #[test]
    fn order_checking() {
        let t = sample();
        assert!(t.check_order(&["a.x", "a.y", "b"]).is_ok());
        assert!(t.check_order(&["a.x", "b", "b"]).is_ok());
        let err = t.check_order(&["a.y", "a.x"]).unwrap_err();
        assert!(err.contains("a.x"));
    }

    #[test]
    fn render_contains_topics() {
        let s = sample().render();
        assert!(s.contains("a.x"));
        assert!(s.contains("four"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut t = sample();
        t.record(SimTime(5_000_000), "no.detail", "");
        t.record(SimTime(6_500_000), "spaced", "n01 -> j3 (g7)");
        let parsed = parse_rendered(&t.render()).unwrap();
        assert_eq!(parsed, t.events());
        let rebuilt = TraceRecorder::from_events(parsed);
        assert_eq!(rebuilt.render(), t.render());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_rendered("not a trace line\n").is_err());
        assert!(parse_rendered("T+1.000000s\n").is_err());
        assert!(parse_rendered("").unwrap().is_empty());
    }
}
