//! Structured event tracing.
//!
//! The trace is the simulation's observable record: integration tests
//! assert that mechanism walk-throughs (e.g. the paper's Figure 5 and
//! Figure 6 step sequences) happen in the documented order, and the
//! experiment harness derives elapsed times and utilization from it.
//!
//! Recording is allocation-free on the disabled path: topics are
//! [`Topic`]s (a `&'static str` for the overwhelmingly common literal
//! case, no interning table needed), and details are accepted as
//! `impl Display` — callers pass `format_args!(…)` and the text is only
//! materialized when the recorder is actually storing events. A bounded
//! *ring* mode retains only the most recent events, so long runs can keep
//! a post-mortem tail without unbounded memory growth.

use crate::queue::QueueStats;
use crate::time::SimTime;
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;

/// A trace topic: either an interned `&'static str` (zero-allocation, the
/// normal case for literal topics) or an owned string (parsed traces,
/// dynamically built topics). Compares, hashes, and derefs as a `str`.
#[derive(Debug, Clone)]
pub enum Topic {
    Static(&'static str),
    Owned(Box<str>),
}

impl Topic {
    pub fn as_str(&self) -> &str {
        match self {
            Topic::Static(s) => s,
            Topic::Owned(s) => s,
        }
    }
}

impl Deref for Topic {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Topic {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Topic {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for Topic {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for Topic {}

impl PartialEq<str> for Topic {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Topic {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl std::hash::Hash for Topic {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&'static str> for Topic {
    fn from(s: &'static str) -> Topic {
        Topic::Static(s)
    }
}

impl From<String> for Topic {
    fn from(s: String) -> Topic {
        Topic::Owned(s.into_boxed_str())
    }
}

impl From<Box<str>> for Topic {
    fn from(s: Box<str>) -> Topic {
        Topic::Owned(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub at: SimTime,
    /// Dot-separated topic, e.g. `rsh.intercept`, `broker.grant`,
    /// `pvm.slave.refused`.
    pub topic: Topic,
    /// Free-form detail (host names, ids).
    pub detail: String,
}

/// An append-only trace with query helpers.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    enabled: bool,
    /// Ring capacity: retain at least this many recent events, trimming
    /// once the buffer doubles it (amortized O(1), contiguous storage).
    ring: Option<usize>,
    /// Events discarded by ring trimming over the recorder's lifetime, so
    /// truncation is observable instead of silent.
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder that stores events.
    pub fn enabled() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: true,
            ring: None,
            dropped: 0,
        }
    }

    /// A recorder that drops everything (for long utilization runs where
    /// only metrics matter).
    pub fn disabled() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: false,
            ring: None,
            dropped: 0,
        }
    }

    /// A bounded recorder keeping (at least) the `cap` most recent events:
    /// the tail a long soak run wants for post-mortems, without the
    /// unbounded growth of a full trace. At most `2 × cap − 1` events are
    /// resident at any instant.
    pub fn ring(cap: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: true,
            ring: Some(cap.max(1)),
            dropped: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total events discarded by ring trimming (0 outside ring mode).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Record an event (no-op when disabled). The detail is accepted as
    /// `impl Display` and only formatted when the recorder is enabled —
    /// pass `format_args!(…)` to keep the disabled path allocation-free.
    pub fn record(&mut self, at: SimTime, topic: impl Into<Topic>, detail: impl fmt::Display) {
        if self.enabled {
            self.push(TraceEvent {
                at,
                topic: topic.into(),
                detail: detail.to_string(),
            });
        }
    }

    fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
        if let Some(cap) = self.ring {
            if self.events.len() >= cap * 2 {
                let trim = self.events.len() - cap;
                self.events.drain(..trim);
                self.dropped += trim as u64;
            }
        }
    }

    /// Move every event out of `staging` into this recorder, preserving
    /// order and applying this recorder's retention policy event by event
    /// — so a trace assembled through staging recorders is byte-identical
    /// to one recorded directly, ring trimming included. The sharded
    /// kernel records each dispatch into a per-shard staging recorder and
    /// absorbs it here, merging per-shard streams back into the canonical
    /// dispatch order. When this recorder is disabled the staged events
    /// are discarded.
    pub fn absorb(&mut self, staging: &mut TraceRecorder) {
        if !self.enabled {
            staging.events.clear();
            return;
        }
        for e in staging.events.drain(..) {
            self.push(e);
        }
    }

    /// All retained events, in recording order (which equals time order,
    /// since the kernel records as it dispatches). In ring mode this is
    /// the recent tail, not the full history.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose topic starts with `prefix`.
    pub fn with_topic<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.topic.starts_with(prefix))
    }

    /// First event with the exact topic.
    pub fn first(&self, topic: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.topic == topic)
    }

    /// Last event with the exact topic.
    pub fn last(&self, topic: &str) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.topic == topic)
    }

    /// Count of events with the exact topic.
    pub fn count(&self, topic: &str) -> usize {
        self.events.iter().filter(|e| e.topic == topic).count()
    }

    /// Assert (returning `Result` for test ergonomics) that events with the
    /// given exact topics occur in the given relative order; other events
    /// may interleave freely.
    pub fn check_order(&self, topics: &[&str]) -> Result<(), String> {
        let mut idx = 0;
        for e in &self.events {
            if idx < topics.len() && e.topic == topics[idx] {
                idx += 1;
            }
        }
        if idx == topics.len() {
            Ok(())
        } else {
            Err(format!(
                "expected topic '{}' (position {idx}) was not found in order; trace has {} events",
                topics[idx],
                self.events.len()
            ))
        }
    }

    /// Render the trace as text lines (for example binaries and debugging).
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "{:>14}  {:<28} {}",
                e.at.to_string(),
                e.topic,
                e.detail
            );
        }
        out
    }

    /// Render with a `#`-prefixed header carrying the kernel's event-queue
    /// work counters; [`parse_rendered`] skips such comment lines, and
    /// `rblint` echoes them back.
    pub fn render_with_stats(&self, stats: &QueueStats) -> String {
        format!(
            "# rb-trace v1 events={} dropped={} scheduled={} dispatched={} peak_depth={}\n{}",
            self.events.len(),
            self.dropped,
            stats.scheduled,
            stats.dispatched,
            stats.peak_depth,
            self.render()
        )
    }

    /// Rebuild a recorder from events parsed or recorded elsewhere (the
    /// inverse of [`TraceRecorder::render`] via [`parse_rendered`]; used by
    /// offline trace tooling such as `rblint`).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        TraceRecorder {
            events,
            enabled: true,
            ring: None,
            dropped: 0,
        }
    }
}

/// Parse one line of [`TraceRecorder::render`] output back into a
/// [`TraceEvent`]. Blank lines and `#` comment/header lines yield `None`.
fn parse_rendered_line(line: &str) -> Result<Option<TraceEvent>, String> {
    let rest = line.trim_start();
    if rest.is_empty() || rest.starts_with('#') {
        return Ok(None);
    }
    let (time_tok, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("missing topic in line: {line:?}"))?;
    let secs: f64 = time_tok
        .strip_prefix("T+")
        .and_then(|s| s.strip_suffix('s'))
        .ok_or_else(|| format!("bad time {time_tok:?}"))?
        .parse()
        .map_err(|e| format!("bad time {time_tok:?}: {e}"))?;
    let rest = rest.trim_start();
    let (topic, detail) = match rest.split_once(char::is_whitespace) {
        Some((t, d)) => (t, d.trim_start()),
        None => (rest, ""),
    };
    if topic.is_empty() {
        return Err(format!("missing topic in line: {line:?}"));
    }
    Ok(Some(TraceEvent {
        at: SimTime((secs * 1e6).round() as u64),
        topic: topic.to_string().into(),
        detail: detail.trim_end().to_string(),
    }))
}

/// Parse a full [`TraceRecorder::render`] dump back into events.
pub fn parse_rendered(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .enumerate()
        .filter_map(|(n, line)| match parse_rendered_line(line) {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => Some(Err(format!("line {}: {e}", n + 1))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::enabled();
        t.record(SimTime(1), "a.x", "one");
        t.record(SimTime(2), "b", "two");
        t.record(SimTime(3), "a.y", "three");
        t.record(SimTime(4), "b", "four");
        t
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceRecorder::disabled();
        t.record(SimTime(1), "a", "x");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn lazy_details_are_not_formatted_when_disabled() {
        struct Bomb;
        impl fmt::Display for Bomb {
            fn fmt(&self, _: &mut fmt::Formatter<'_>) -> fmt::Result {
                panic!("detail formatted on the disabled path");
            }
        }
        let mut t = TraceRecorder::disabled();
        t.record(SimTime(1), "a", Bomb);
        assert!(t.events().is_empty());
    }

    #[test]
    fn format_args_details_record() {
        let mut t = TraceRecorder::enabled();
        let host = "n01";
        t.record(SimTime(1), "x", format_args!("{host} up={}", true));
        assert_eq!(t.events()[0].detail, "n01 up=true");
    }

    #[test]
    fn topics_compare_as_strings() {
        let a: Topic = "broker.grant".into();
        let b: Topic = String::from("broker.grant").into();
        assert_eq!(a, b);
        assert_eq!(a, "broker.grant");
        assert!(a.starts_with("broker."));
        assert_eq!(a.to_string(), "broker.grant");
    }

    #[test]
    fn ring_mode_keeps_the_recent_tail() {
        let mut t = TraceRecorder::ring(10);
        for i in 0..100u64 {
            t.record(SimTime(i), "tick", format_args!("{i}"));
        }
        let events = t.events();
        assert!(events.len() >= 10, "{}", events.len());
        assert!(events.len() < 20, "{}", events.len());
        // The newest events are always retained, in order.
        assert_eq!(events.last().unwrap().detail, "99");
        let details: Vec<u64> = events.iter().map(|e| e.detail.parse().unwrap()).collect();
        assert!(details.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn absorb_is_indistinguishable_from_direct_recording() {
        // Route half the events through a staging recorder (as the
        // sharded kernel does per dispatch) and compare against recording
        // straight into an identical ring recorder: retained events and
        // the dropped counter must match exactly.
        let mut direct = TraceRecorder::ring(5);
        let mut merged = TraceRecorder::ring(5);
        let mut staging = TraceRecorder::enabled();
        for i in 0..40u64 {
            direct.record(SimTime(i), "tick", format_args!("{i}"));
            if i % 2 == 0 {
                merged.record(SimTime(i), "tick", format_args!("{i}"));
            } else {
                staging.record(SimTime(i), "tick", format_args!("{i}"));
                merged.absorb(&mut staging);
                assert!(staging.events().is_empty());
            }
        }
        assert_eq!(merged.events(), direct.events());
        assert_eq!(merged.dropped_events(), direct.dropped_events());

        // A disabled recorder discards absorbed events.
        let mut off = TraceRecorder::disabled();
        staging.record(SimTime(1), "tick", "x");
        off.absorb(&mut staging);
        assert!(off.events().is_empty());
        assert!(staging.events().is_empty());
    }

    #[test]
    fn queries() {
        let t = sample();
        assert_eq!(t.with_topic("a.").count(), 2);
        assert_eq!(t.count("b"), 2);
        assert_eq!(t.first("b").unwrap().detail, "two");
        assert_eq!(t.last("b").unwrap().detail, "four");
        assert!(t.first("zzz").is_none());
    }

    #[test]
    fn order_checking() {
        let t = sample();
        assert!(t.check_order(&["a.x", "a.y", "b"]).is_ok());
        assert!(t.check_order(&["a.x", "b", "b"]).is_ok());
        let err = t.check_order(&["a.y", "a.x"]).unwrap_err();
        assert!(err.contains("a.x"));
    }

    #[test]
    fn render_contains_topics() {
        let s = sample().render();
        assert!(s.contains("a.x"));
        assert!(s.contains("four"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut t = sample();
        t.record(SimTime(5_000_000), "no.detail", "");
        t.record(SimTime(6_500_000), "spaced", "n01 -> j3 (g7)");
        let parsed = parse_rendered(&t.render()).unwrap();
        assert_eq!(parsed, t.events());
        let rebuilt = TraceRecorder::from_events(parsed);
        assert_eq!(rebuilt.render(), t.render());
    }

    #[test]
    fn header_renders_and_parses_transparently() {
        let t = sample();
        let stats = QueueStats {
            scheduled: 7,
            dispatched: 5,
            peak_depth: 3,
            depth: 2,
        };
        let text = t.render_with_stats(&stats);
        assert!(text.starts_with("# rb-trace v1 "));
        assert!(text.contains("peak_depth=3"));
        let parsed = parse_rendered(&text).unwrap();
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_rendered("not a trace line\n").is_err());
        assert!(parse_rendered("T+1.000000s\n").is_err());
        assert!(parse_rendered("").unwrap().is_empty());
        assert!(parse_rendered("# just a comment\n").unwrap().is_empty());
    }
}
