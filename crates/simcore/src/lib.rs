//! # rb-simcore — deterministic discrete-event simulation kernel
//!
//! A minimal, domain-agnostic event kernel: virtual time, a stable-ordered
//! event queue, a seeded random-number generator, and recorders for traces
//! and summary statistics. `rb-simnet` builds the cluster substrate on top
//! of this.
//!
//! Determinism contract: given the same seed and the same sequence of
//! `schedule` calls, a simulation replays identically. Ties in time are
//! broken by insertion sequence number, never by heap internals.

pub mod arena;
pub mod fxhash;
pub mod json;
pub mod key;
pub mod metrics;
pub mod prof;
pub mod queue;
pub mod registry;
pub mod rng;
pub mod sink;
pub mod span;
pub mod spsc;
pub mod time;
pub mod trace;
pub mod wheel;

pub use arena::{Slab, SlabKey};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use json::Json;
pub use key::{merge_dispatch_logs, DispatchKey, KeyStream};
pub use metrics::{Histogram, Series, Summary};
pub use prof::{ProfEntry, ProfTimer, Profiler};
pub use queue::{EventQueue, QueueKind, QueueStats, ScheduleOracle};
pub use registry::MetricsRegistry;
pub use rng::SimRng;
pub use sink::{FullSink, RingSink, StreamSink, TraceSink};
pub use span::{SpanForest, SpanId, SpanRecord, SpanTracker};
pub use spsc::SpscRing;
pub use time::{Duration, SimTime};
pub use trace::{
    parse_rendered, parse_stats_comment, Topic, TraceEvent, TraceFileStats, TraceRecorder,
};
pub use wheel::TimerWheel;
