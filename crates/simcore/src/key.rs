//! Machine-affine dispatch keys: the total order that makes threaded
//! lanes byte-identical to the serial kernel.
//!
//! Every event carries a [`DispatchKey`] assigned **at push time** by the
//! pushing context's [`KeyStream`] and never rewritten. Both kernels (the
//! serial loop and the windowed lane coordinator) dispatch events in
//! lexicographic `(time, key)` order, and because the key depends only on
//! *which machine pushed the event and when in that machine's own
//! history* — never on a global counter — serial, coordinator-sharded and
//! threaded executions compute identical keys and therefore identical
//! dispatch orders, traces and queue statistics.
//!
//! # Layout
//!
//! ```text
//! 63            44 43              16 15           0
//! +---------------+------------------+--------------+
//! |  origin (20)  | dispatch idx (28)| ordinal (16) |
//! +---------------+------------------+--------------+
//! ```
//!
//! * **origin** — `machine_id + 1` for events pushed while dispatching an
//!   event on that machine; `0` for the harness / world-setup context.
//!   Harness keys therefore sort before machine keys at equal times.
//! * **dispatch idx** — how many events this origin had dispatched when
//!   the push happened (a per-origin counter, identical in every
//!   execution mode because the global order projects onto each machine's
//!   local history).
//! * **ordinal** — push number within that dispatch. On overflow the
//!   stream bumps the dispatch index and resets the ordinal, which keeps
//!   keys strictly increasing per origin.
//!
//! The merge side lives in [`merge_dispatch_logs`]: given per-lane logs
//! that are each internally sorted by `(time, key)`, it recovers the one
//! canonical global order.

use crate::time::SimTime;
use std::fmt;

/// Bits reserved for the push ordinal within one dispatch.
pub const ORDINAL_BITS: u32 = 16;
/// Bits reserved for the per-origin dispatch index.
pub const DISPATCH_BITS: u32 = 28;
/// Bits reserved for the origin (machine id + 1, or 0 for the harness).
pub const ORIGIN_BITS: u32 = 64 - DISPATCH_BITS - ORDINAL_BITS;

const ORDINAL_MASK: u64 = (1 << ORDINAL_BITS) - 1;
const DISPATCH_MASK: u64 = (1 << DISPATCH_BITS) - 1;

/// A packed `(origin, dispatch idx, ordinal)` event key. Ordering is the
/// plain `u64` ordering of the packed value, which is exactly
/// origin-major, then dispatch-index, then ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DispatchKey(pub u64);

impl DispatchKey {
    /// Pack a key from its three fields. Debug-asserts the fields fit.
    #[inline]
    pub fn pack(origin: u64, dispatch_idx: u64, ordinal: u64) -> DispatchKey {
        debug_assert!(origin < (1 << ORIGIN_BITS), "origin out of range");
        debug_assert!(dispatch_idx <= DISPATCH_MASK, "dispatch idx out of range");
        debug_assert!(ordinal <= ORDINAL_MASK, "ordinal out of range");
        DispatchKey(
            (origin << (DISPATCH_BITS + ORDINAL_BITS)) | (dispatch_idx << ORDINAL_BITS) | ordinal,
        )
    }

    /// The pushing context: `0` = harness, `m + 1` = machine `m`.
    #[inline]
    pub fn origin(self) -> u64 {
        self.0 >> (DISPATCH_BITS + ORDINAL_BITS)
    }

    /// Per-origin dispatch index at push time.
    #[inline]
    pub fn dispatch_idx(self) -> u64 {
        (self.0 >> ORDINAL_BITS) & DISPATCH_MASK
    }

    /// Push number within the dispatch.
    #[inline]
    pub fn ordinal(self) -> u64 {
        self.0 & ORDINAL_MASK
    }
}

impl fmt::Display for DispatchKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}.{}",
            self.origin(),
            self.dispatch_idx(),
            self.ordinal()
        )
    }
}

/// Per-origin key generator. One stream exists per machine (owned by that
/// machine's lane) plus one for the harness context (owned by the
/// coordinator); a stream is only ever advanced by the single execution
/// context that owns it, so no synchronization is needed and the values
/// it hands out are a pure function of that origin's local history.
#[derive(Debug, Clone, Default)]
pub struct KeyStream {
    origin: u64,
    dispatch_idx: u64,
    ordinal: u64,
}

impl KeyStream {
    /// Stream for machine `m` (origin `m + 1`).
    pub fn for_machine(m: u64) -> KeyStream {
        KeyStream {
            origin: m + 1,
            dispatch_idx: 0,
            ordinal: 0,
        }
    }

    /// Stream for the harness / world-setup context (origin 0).
    pub fn harness() -> KeyStream {
        KeyStream::default()
    }

    /// Begin the next dispatch on this origin: later [`next_key`] calls
    /// are ordinals of this dispatch.
    ///
    /// [`next_key`]: KeyStream::next_key
    pub fn begin_dispatch(&mut self) {
        self.dispatch_idx += 1;
        self.ordinal = 0;
    }

    /// The stream's origin (`0` = harness, `m + 1` = machine `m`).
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Index of the dispatch most recently begun on this origin.
    pub fn dispatch_idx(&self) -> u64 {
        self.dispatch_idx
    }

    /// Key for the next event pushed in the current dispatch. On ordinal
    /// overflow the dispatch index is bumped instead, preserving strict
    /// per-origin monotonicity.
    pub fn next_key(&mut self) -> DispatchKey {
        if self.ordinal > ORDINAL_MASK {
            self.dispatch_idx += 1;
            self.ordinal = 0;
        }
        let key = DispatchKey::pack(self.origin, self.dispatch_idx, self.ordinal);
        self.ordinal += 1;
        key
    }
}

/// Deterministically merge per-lane dispatch logs into the canonical
/// global order.
///
/// Each lane's log must be internally sorted by `(time, key)` — which
/// lane execution guarantees, since a lane dispatches its events in
/// exactly that order — and keys must be globally unique (each origin
/// owns its stream and every machine belongs to one lane). The result is
/// the order the serial kernel would have produced, independent of how
/// many lanes there were or how their threads interleaved.
///
/// Returns indices `(lane, position)` into the input logs.
///
/// ```
/// use rb_simcore::{merge_dispatch_logs, DispatchKey, SimTime};
///
/// // Two lanes dispatched interleaved work: lane 0 owns machine 0
/// // (origin 1), lane 1 owns machine 1 (origin 2). At the equal
/// // timestamp 40 the key breaks the tie: machine 0's event first.
/// let lane0 = vec![(SimTime(10), DispatchKey::pack(1, 0, 0)),
///                  (SimTime(40), DispatchKey::pack(1, 1, 0))];
/// let lane1 = vec![(SimTime(20), DispatchKey::pack(2, 0, 1)),
///                  (SimTime(40), DispatchKey::pack(2, 1, 0))];
/// let order = merge_dispatch_logs(&[&lane0, &lane1], |&(t, k)| (t, k));
/// assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
///
/// // The merge is associative with lane composition: a single lane that
/// // owned both machines logs the same total order.
/// let serial = vec![lane0[0], lane1[0], lane0[1], lane1[1]];
/// let alone = merge_dispatch_logs(&[&serial], |&(t, k)| (t, k));
/// assert_eq!(alone.len(), 4);
/// ```
pub fn merge_dispatch_logs<T>(
    lanes: &[&[T]],
    mut key_of: impl FnMut(&T) -> (SimTime, DispatchKey),
) -> Vec<(usize, usize)> {
    let total: usize = lanes.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; lanes.len()];
    for _ in 0..total {
        let mut best: Option<(SimTime, DispatchKey, usize)> = None;
        for (lane, log) in lanes.iter().enumerate() {
            let pos = cursors[lane];
            if pos >= log.len() {
                continue;
            }
            let (t, k) = key_of(&log[pos]);
            debug_assert!(
                pos == 0 || {
                    let (pt, pk) = key_of(&log[pos - 1]);
                    (pt, pk) < (t, k)
                },
                "lane log not sorted by (time, key)"
            );
            if best.map(|(bt, bk, _)| (t, k) < (bt, bk)).unwrap_or(true) {
                best = Some((t, k, lane));
            }
        }
        let (_, _, lane) = best.expect("total count implies a remaining entry");
        out.push((lane, cursors[lane]));
        cursors[lane] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_and_ordering() {
        let k = DispatchKey::pack(7, 1234, 56);
        assert_eq!(k.origin(), 7);
        assert_eq!(k.dispatch_idx(), 1234);
        assert_eq!(k.ordinal(), 56);
        // Origin-major ordering; harness (origin 0) sorts first.
        assert!(DispatchKey::pack(0, u64::from(u32::MAX >> 4), 99) < DispatchKey::pack(1, 0, 0));
        assert!(DispatchKey::pack(3, 5, 9) < DispatchKey::pack(3, 6, 0));
        assert!(DispatchKey::pack(3, 5, 9) < DispatchKey::pack(3, 5, 10));
        assert_eq!(k.to_string(), "7/1234.56");
    }

    #[test]
    fn stream_is_strictly_monotone_across_overflow() {
        let mut s = KeyStream::for_machine(2);
        let mut last = s.next_key();
        // Push enough to overflow the 16-bit ordinal twice.
        for i in 0..(3 << ORDINAL_BITS) {
            if i % 1000 == 0 {
                s.begin_dispatch();
            }
            let k = s.next_key();
            assert!(k > last, "stream went backwards at {i}");
            assert_eq!(k.origin(), 3);
            last = k;
        }
    }

    #[test]
    fn merge_handles_empty_and_singleton_lanes() {
        let a: Vec<(SimTime, DispatchKey)> = vec![(SimTime(5), DispatchKey::pack(1, 0, 0))];
        let b: Vec<(SimTime, DispatchKey)> = vec![];
        let order = merge_dispatch_logs(&[&a, &b], |&(t, k)| (t, k));
        assert_eq!(order, vec![(0, 0)]);
        let none = merge_dispatch_logs::<(SimTime, DispatchKey)>(&[], |&(t, k)| (t, k));
        assert!(none.is_empty());
    }
}
