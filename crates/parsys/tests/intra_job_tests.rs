//! Second batch of programming-system tests: the *intra-job* resource
//! managers' scheduling and bookkeeping — task distribution, host tables,
//! voluntary shrink, tuple-space semantics.

use rb_parsys::{
    CalypsoConfig, CalypsoMaster, LamOrigin, LamOriginConfig, ParsysPrograms, PlindaConfig,
    PlindaServer, PvmMaster, PvmMasterConfig, TaskBag,
};
use rb_proto::{CtlMsg, LamMsg, Payload, ProcId, PvmMsg, Tuple, TupleField};
use rb_simcore::{Duration, SimTime};
use rb_simnet::{BasePrograms, Behavior, Ctx, FactoryChain, ProcEnv, World, WorldBuilder};
use std::sync::Arc;
use std::sync::Mutex;

fn lab(n: usize) -> (World, Vec<rb_proto::MachineId>) {
    let mut b = WorldBuilder::new()
        .seed(23)
        .factory(FactoryChain::new().with(BasePrograms).with(ParsysPrograms));
    let ms = b.standard_lab(n);
    (b.build(), ms)
}

fn env() -> ProcEnv {
    ProcEnv::user_standard("alice")
}

// ---------------------------------------------------------------------
// PVM scheduling
// ---------------------------------------------------------------------

#[test]
fn pvm_tasks_round_robin_across_slaves() {
    let (mut world, ms) = lab(4);
    let master = world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig {
            initial_hosts: vec!["n01".into(), "n02".into(), "n03".into()],
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    assert_eq!(world.procs_named("pvmd").len(), 3);
    world.send_from_harness(
        master,
        Payload::Pvm(PvmMsg::SpawnTasks {
            n: 6,
            cpu_millis: 1_000,
        }),
    );
    world.run_until(SimTime(10_000_000));
    assert_eq!(world.trace().count("pvm.task.done"), 6);
    // Round-robin over 3 slaves, 6 tasks: each machine did ~2 CPU-seconds.
    for m in &ms[1..] {
        let busy = world.busy_time(*m).as_secs_f64();
        assert!((1.9..=2.2).contains(&busy), "busy {busy} on {m}");
    }
}

#[test]
fn pvm_conf_reports_the_host_table() {
    struct ConfAsker {
        master: ProcId,
        hosts: Arc<Mutex<Option<Vec<String>>>>,
    }
    impl Behavior for ConfAsker {
        fn name(&self) -> &'static str {
            "conf-asker"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let me = ctx.me();
            ctx.send(self.master, Payload::Pvm(PvmMsg::Conf { reply_to: me }));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
            if let Payload::Pvm(PvmMsg::ConfReply { hosts }) = msg {
                *self.hosts.lock().unwrap() = Some(hosts);
                ctx.exit(rb_proto::ExitStatus::Success);
            }
        }
    }
    let (mut world, ms) = lab(3);
    let master = world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig {
            initial_hosts: vec!["n01".into(), "n02".into()],
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    let hosts = Arc::new(Mutex::new(None));
    world.spawn_user(
        ms[0],
        Box::new(ConfAsker {
            master,
            hosts: hosts.clone(),
        }),
        env(),
    );
    world.run_until(SimTime(6_000_000));
    let mut got = hosts.lock().unwrap().clone().unwrap();
    got.sort();
    assert_eq!(got, vec!["n01".to_string(), "n02".to_string()]);
}

#[test]
fn pvm_tasks_run_locally_with_no_slaves() {
    let (mut world, ms) = lab(1);
    let master = world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig {
            default_task_millis: 500,
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(1_000_000));
    world.send_from_harness(
        master,
        Payload::Pvm(PvmMsg::SpawnTasks {
            n: 2,
            cpu_millis: 0,
        }),
    );
    world.run_until(SimTime(5_000_000));
    assert_eq!(world.trace().count("pvm.task.done"), 2);
    // The master's own host burned the CPU.
    assert!(world.busy_time(ms[0]).as_secs_f64() >= 0.9);
}

// ---------------------------------------------------------------------
// LAM work units
// ---------------------------------------------------------------------

#[test]
fn lam_work_units_spread_and_complete() {
    let (mut world, ms) = lab(3);
    let origin = world.spawn_user(
        ms[0],
        Box::new(LamOrigin::new(LamOriginConfig {
            boot_hosts: vec!["n01".into(), "n02".into()],
            work_millis: 800,
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    for _ in 0..4 {
        world.send_from_harness(origin, Payload::Lam(LamMsg::RunWork { cpu_millis: 0 }));
    }
    world.run_until(SimTime(10_000_000));
    // 4 units x 0.8s over 2 nodes: each node computed ~1.6s.
    for m in &ms[1..] {
        let busy = world.busy_time(*m).as_secs_f64();
        assert!((1.5..=1.8).contains(&busy), "busy {busy}");
    }
}

// ---------------------------------------------------------------------
// Calypso voluntary shrink
// ---------------------------------------------------------------------

#[test]
fn calypso_shrink_hint_sheds_workers_gracefully() {
    let (mut world, ms) = lab(4);
    let master = world.spawn_user(
        ms[0],
        Box::new(CalypsoMaster::new(CalypsoConfig {
            tasks: TaskBag::Endless { cpu_millis: 400 },
            desired_workers: 3,
            hostfile: vec!["n01".into(), "n02".into(), "n03".into()],
            task_timeout: None,
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    assert_eq!(world.procs_named("calypso-worker").len(), 3);
    world.send_from_harness(master, Payload::Ctl(CtlMsg::ShrinkHint { count: 2 }));
    world.run_until(SimTime(10_000_000));
    assert_eq!(world.procs_named("calypso-worker").len(), 1);
    // The remaining worker still computes.
    let before = world.trace().count("calypso.task.requeue");
    world.run_until(SimTime(15_000_000));
    assert!(world.alive(master));
    let _ = before;
}

// ---------------------------------------------------------------------
// PLinda tuple-space semantics
// ---------------------------------------------------------------------

#[test]
fn plinda_out_in_roundtrip_through_harness() {
    // A server with no tasks; deposit two tuples of different shapes; a
    // worker must receive only the matching ("task", int, int) one.
    let (mut world, ms) = lab(2);
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(PlindaConfig {
            tasks: vec![],
            desired_workers: 1,
            hostfile: vec!["n01".into()],
            persistent: false,
        })),
        env(),
    );
    world.run_until(SimTime(3_000_000));
    assert_eq!(world.procs_named("plinda-worker").len(), 1);

    // A non-matching tuple first: the worker's blocked `in` stays blocked.
    world.send_from_harness(
        server,
        Payload::Plinda(rb_proto::PlindaMsg::Out {
            tuple: Tuple(vec![TupleField::Str("banner".into())]),
        }),
    );
    world.run_until(SimTime(4_000_000));
    assert_eq!(world.busy_time(ms[1]), Duration::ZERO, "no work yet");

    // Now a real task: the worker computes it.
    world.send_from_harness(
        server,
        Payload::Plinda(rb_proto::PlindaMsg::Out {
            tuple: Tuple(vec![
                TupleField::Str("task".into()),
                TupleField::Int(1),
                TupleField::Int(700),
            ]),
        }),
    );
    world.run_until(SimTime(6_000_000));
    let busy = world.busy_time(ms[1]).as_secs_f64();
    assert!((0.65..=0.8).contains(&busy), "busy {busy}");
}

#[test]
fn plinda_server_counts_results_not_other_outs() {
    let (mut world, ms) = lab(3);
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(PlindaConfig {
            tasks: vec![300; 3],
            desired_workers: 2,
            hostfile: vec!["n01".into(), "n02".into()],
            persistent: false,
        })),
        env(),
    );
    world.run_until_pred(SimTime(60_000_000), |w| !w.alive(server));
    let complete = world.trace().last("plinda.complete").unwrap();
    assert!(complete.detail.contains("results=3"), "{}", complete.detail);
}
