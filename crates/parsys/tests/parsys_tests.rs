//! Behavioral tests of the four programming systems running on the raw
//! substrate (no broker): growth with real host names, refusal of
//! unexpected machines, task execution, graceful retreat, and fault
//! tolerance.

use rb_parsys::{
    CalypsoConfig, CalypsoMaster, LamOrigin, LamOriginConfig, ParsysPrograms, PlindaConfig,
    PlindaServer, PvmConsole, PvmMaster, PvmMasterConfig, PvmSlave, TaskBag,
};
use rb_proto::{ConsoleCmd, CtlMsg, ExitStatus, Payload, ProcId, Signal, VmId};
use rb_simcore::{Duration, SimTime};
use rb_simnet::{BasePrograms, FactoryChain, ProcEnv, World, WorldBuilder};

const FAR: SimTime = SimTime(3_600_000_000);

fn lab(n: usize) -> (World, Vec<rb_proto::MachineId>) {
    let mut b = WorldBuilder::new()
        .seed(11)
        .factory(FactoryChain::new().with(BasePrograms).with(ParsysPrograms));
    let ms = b.standard_lab(n);
    (b.build(), ms)
}

fn env() -> ProcEnv {
    ProcEnv::user_standard("alice")
}

// ---------------------------------------------------------------------
// PVM
// ---------------------------------------------------------------------

#[test]
fn pvm_grows_with_real_host_names() {
    let (mut world, ms) = lab(4);
    world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig {
            initial_hosts: vec!["n01".into(), "n02".into(), "n03".into()],
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    assert_eq!(world.procs_named("pvmd").len(), 3);
    assert_eq!(world.trace().count("pvm.slave.accepted"), 3);
    assert_eq!(world.trace().count("pvm.slave.refused"), 0);
}

#[test]
fn pvm_add_of_unknown_host_fails_but_master_survives() {
    let (mut world, ms) = lab(2);
    let master = world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig {
            initial_hosts: vec!["n01".into(), "bogus-host".into()],
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    assert!(world.alive(master), "failed adds are tolerated");
    assert_eq!(world.procs_named("pvmd").len(), 1);
    assert_eq!(world.trace().count("pvm.add.failed"), 1);
}

#[test]
fn pvm_refuses_slave_from_unexpected_machine() {
    // Spawn a slave on a machine the master never attempted to add: it
    // must be refused and exit with a failure status.
    let (mut world, ms) = lab(3);
    let master = world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig::default())),
        env(),
    );
    world.run_until(SimTime(1_000_000));
    let rogue = world.spawn_user(ms[2], Box::new(PvmSlave::new(master, VmId(0))), env());
    world.run_until(SimTime(3_000_000));
    assert_eq!(world.exit_status(rogue), Some(ExitStatus::Failure(1)));
    assert_eq!(world.trace().count("pvm.slave.refused"), 1);
    assert!(world.procs_named("pvmd").is_empty());
}

#[test]
fn pvm_console_script_grows_and_halts() {
    let (mut world, ms) = lab(3);
    world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig::default())),
        env(),
    );
    // The console finds the pvmd via the per-user service registry, adds
    // two hosts, spawns tasks, and quits — exactly what a module does.
    world.schedule(SimTime(500_000), move |w| {
        let m0 = w.machine_by_host("n00").unwrap();
        w.spawn_user(
            m0,
            Box::new(PvmConsole::new(vec![
                ConsoleCmd::Add("n01".into()),
                ConsoleCmd::Add("n02".into()),
                ConsoleCmd::Spawn(4),
                ConsoleCmd::Quit,
            ])),
            ProcEnv::user_standard("alice"),
        );
    });
    world.run_until(SimTime(10_000_000));
    assert_eq!(world.procs_named("pvmd").len(), 2);
    assert_eq!(world.trace().count("pvm.console.add-result"), 2);
    // 4 tasks dispatched; each completes.
    assert_eq!(world.trace().count("pvm.task.done"), 4);

    // Now halt everything via a second console.
    world.schedule_in(Duration::from_secs(1), move |w| {
        let m0 = w.machine_by_host("n00").unwrap();
        w.spawn_user(
            m0,
            Box::new(PvmConsole::new(vec![ConsoleCmd::Halt])),
            ProcEnv::user_standard("alice"),
        );
    });
    world.run_until(SimTime(20_000_000));
    assert!(world.procs_named("pvmd").is_empty());
    assert!(world.procs_named("pvm-master").is_empty());
}

#[test]
fn pvm_console_without_pvmd_fails() {
    let (mut world, ms) = lab(1);
    let console = world.spawn_user(
        ms[0],
        Box::new(PvmConsole::new(vec![ConsoleCmd::Quit])),
        env(),
    );
    world.run_until(SimTime(2_000_000));
    assert_eq!(world.exit_status(console), Some(ExitStatus::Failure(1)));
}

#[test]
fn pvm_duplicate_add_fails_fast() {
    let (mut world, ms) = lab(2);
    world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig {
            initial_hosts: vec!["n01".into()],
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(3_000_000));
    world.schedule_in(Duration::ZERO, |w| {
        let m0 = w.machine_by_host("n00").unwrap();
        w.spawn_user(
            m0,
            Box::new(PvmConsole::new(vec![
                ConsoleCmd::Add("n01".into()),
                ConsoleCmd::Quit,
            ])),
            ProcEnv::user_standard("alice"),
        );
    });
    world.run_until(SimTime(6_000_000));
    // The console observed a failed add for the duplicate host.
    let trace = world.trace();
    assert!(trace
        .with_topic("pvm.console.add-result")
        .any(|e| e.detail.contains("ok=false")));
    assert_eq!(world.procs_named("pvmd").len(), 1);
}

#[test]
fn pvm_slave_retreats_gracefully_on_sigterm() {
    let (mut world, ms) = lab(2);
    world.spawn_user(
        ms[0],
        Box::new(PvmMaster::new(PvmMasterConfig {
            initial_hosts: vec!["n01".into()],
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(3_000_000));
    let slave = world.procs_named("pvmd")[0];
    world.kill_from_harness(slave, Signal::Term);
    world.run_until(SimTime(5_000_000));
    assert!(world.procs_named("pvmd").is_empty());
    assert_eq!(world.trace().count("pvm.slave.gone"), 1);
}

// ---------------------------------------------------------------------
// LAM
// ---------------------------------------------------------------------

#[test]
fn lam_boots_and_grows() {
    let (mut world, ms) = lab(4);
    let origin = world.spawn_user(
        ms[0],
        Box::new(LamOrigin::new(LamOriginConfig {
            boot_hosts: vec!["n01".into(), "n02".into()],
            work_millis: 100,
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    assert_eq!(world.procs_named("lamd").len(), 2);
    // Grow one more via the self-scheduling hook.
    world.send_from_harness(origin, Payload::Ctl(CtlMsg::GrowHint { count: 1 }));
    world.run_until(SimTime(6_000_000));
    // GrowHint uses "anylinux" which plain rsh cannot resolve: tolerated
    // failure, still 2 nodes.
    assert_eq!(world.procs_named("lamd").len(), 2);
    assert_eq!(world.trace().count("lam.grow.failed"), 1);
    assert!(world.alive(origin));
}

#[test]
fn lam_refuses_unexpected_node() {
    let (mut world, ms) = lab(3);
    let origin = world.spawn_user(
        ms[0],
        Box::new(LamOrigin::new(LamOriginConfig::default())),
        env(),
    );
    world.run_until(SimTime(1_000_000));
    let rogue = world.spawn_user(
        ms[2],
        Box::new(rb_parsys::LamNode::new(origin, rb_proto::SessionId(0))),
        env(),
    );
    world.run_until(SimTime(3_000_000));
    assert_eq!(world.exit_status(rogue), Some(ExitStatus::Failure(1)));
    assert_eq!(world.trace().count("lam.node.refused"), 1);
}

#[test]
fn lam_halt_shuts_everything_down() {
    let (mut world, ms) = lab(3);
    let origin = world.spawn_user(
        ms[0],
        Box::new(LamOrigin::new(LamOriginConfig {
            boot_hosts: vec!["n01".into(), "n02".into()],
            ..Default::default()
        })),
        env(),
    );
    world.run_until(SimTime(5_000_000));
    world.send_from_harness(origin, Payload::Lam(rb_proto::LamMsg::Halt));
    world.run_until(SimTime(8_000_000));
    assert!(world.procs_named("lamd").is_empty());
    assert!(world.procs_named("lam-origin").is_empty());
}

// ---------------------------------------------------------------------
// Calypso
// ---------------------------------------------------------------------

fn calypso_cfg(hosts: &[&str], tasks: TaskBag) -> CalypsoConfig {
    CalypsoConfig {
        tasks,
        desired_workers: hosts.len() as u32,
        hostfile: hosts.iter().map(|s| s.to_string()).collect(),
        task_timeout: None,
    }
}

#[test]
fn calypso_finite_job_completes() {
    let (mut world, ms) = lab(3);
    let master = world.spawn_user(
        ms[0],
        Box::new(CalypsoMaster::new(calypso_cfg(
            &["n01", "n02"],
            TaskBag::Finite(vec![500; 8]),
        ))),
        env(),
    );
    world.run_until_pred(FAR, |w| !w.alive(master));
    assert_eq!(world.exit_status(master), Some(ExitStatus::Success));
    assert_eq!(world.trace().count("calypso.complete"), 1);
    // Workers exit after JobComplete.
    world.run_until(world.now() + Duration::from_secs(1));
    assert!(world.procs_named("calypso-worker").is_empty());
}

#[test]
fn calypso_parallel_speedup() {
    // 8 tasks x 1 CPU-second each: 2 workers ≈ 4s of compute, 4 workers ≈ 2s.
    fn elapsed(workers: usize) -> f64 {
        let (mut world, ms) = lab(workers + 1);
        let hosts: Vec<String> = (1..=workers).map(|i| format!("n{i:02}")).collect();
        let host_refs: Vec<&str> = hosts.iter().map(|s| s.as_str()).collect();
        let master = world.spawn_user(
            ms[0],
            Box::new(CalypsoMaster::new(calypso_cfg(
                &host_refs,
                TaskBag::Finite(vec![1_000; 8]),
            ))),
            env(),
        );
        world.run_until_pred(FAR, |w| !w.alive(master));
        world.now().as_secs_f64()
    }
    let two = elapsed(2);
    let four = elapsed(4);
    assert!(four < two, "more workers should be faster: {four} vs {two}");
    assert!(
        (two / four) > 1.6,
        "speedup should be near 2x: {two} / {four}"
    );
}

#[test]
fn calypso_tolerates_worker_eviction() {
    let (mut world, ms) = lab(3);
    let master = world.spawn_user(
        ms[0],
        Box::new(CalypsoMaster::new(calypso_cfg(
            &["n01", "n02"],
            TaskBag::Finite(vec![2_000; 6]),
        ))),
        env(),
    );
    // Evict one worker mid-computation via SIGTERM (the sub-appl's method).
    world.schedule(SimTime(1_500_000), |w| {
        let workers = w.procs_named("calypso-worker");
        if let Some(&first) = workers.first() {
            w.kill_from_harness(first, Signal::Term);
        }
    });
    world.run_until_pred(FAR, |w| !w.alive(master));
    assert_eq!(world.exit_status(master), Some(ExitStatus::Success));
    // The in-flight task was requeued and re-executed.
    assert!(world.trace().count("calypso.task.requeue") >= 1);
}

#[test]
fn calypso_task_timeout_reexecutes_after_worker_crash() {
    // SIGKILL a worker (no graceful retreat): eager scheduling's timeout
    // must recover the task.
    let (mut world, ms) = lab(3);
    let mut cfg = calypso_cfg(&["n01", "n02"], TaskBag::Finite(vec![2_000; 4]));
    cfg.task_timeout = Some(Duration::from_secs(6));
    let master = world.spawn_user(ms[0], Box::new(CalypsoMaster::new(cfg)), env());
    world.schedule(SimTime(1_500_000), |w| {
        let workers = w.procs_named("calypso-worker");
        if let Some(&first) = workers.first() {
            w.kill_from_harness(first, Signal::Kill);
        }
    });
    world.run_until_pred(FAR, |w| !w.alive(master));
    assert_eq!(world.exit_status(master), Some(ExitStatus::Success));
    assert!(world.trace().count("calypso.task.timeout") >= 1);
}

#[test]
fn calypso_grow_hint_adds_workers() {
    let (mut world, ms) = lab(4);
    let master = world.spawn_user(
        ms[0],
        Box::new(CalypsoMaster::new(CalypsoConfig {
            tasks: TaskBag::Endless { cpu_millis: 500 },
            desired_workers: 1,
            hostfile: vec!["n01".into(), "n02".into(), "n03".into()],
            task_timeout: None,
        })),
        env(),
    );
    world.run_until(SimTime(3_000_000));
    assert_eq!(world.procs_named("calypso-worker").len(), 1);
    world.send_from_harness(master, Payload::Ctl(CtlMsg::GrowHint { count: 2 }));
    world.run_until(SimTime(6_000_000));
    assert_eq!(world.procs_named("calypso-worker").len(), 3);
}

// ---------------------------------------------------------------------
// PLinda
// ---------------------------------------------------------------------

#[test]
fn plinda_bag_of_tasks_completes() {
    let (mut world, ms) = lab(3);
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(PlindaConfig {
            tasks: vec![400; 10],
            desired_workers: 2,
            hostfile: vec!["n01".into(), "n02".into()],
            persistent: false,
        })),
        env(),
    );
    world.run_until_pred(FAR, |w| !w.alive(server));
    assert_eq!(world.exit_status(server), Some(ExitStatus::Success));
    assert!(world
        .trace()
        .last("plinda.complete")
        .unwrap()
        .detail
        .contains("results=10"));
}

#[test]
fn plinda_rolls_back_tuple_on_worker_departure() {
    let (mut world, ms) = lab(3);
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(PlindaConfig {
            tasks: vec![3_000; 4],
            desired_workers: 2,
            hostfile: vec!["n01".into(), "n02".into()],
            persistent: false,
        })),
        env(),
    );
    world.schedule(SimTime(1_500_000), |w| {
        let workers = w.procs_named("plinda-worker");
        if let Some(&first) = workers.first() {
            w.kill_from_harness(first, Signal::Term);
        }
    });
    world.run_until_pred(FAR, |w| !w.alive(server));
    assert_eq!(world.exit_status(server), Some(ExitStatus::Success));
    assert!(world.trace().count("plinda.rollback") >= 1);
}

#[test]
fn plinda_blocked_in_served_when_tuple_arrives() {
    // One worker, zero tasks initially: its `in` blocks. A task deposited
    // later unblocks it.
    let (mut world, ms) = lab(2);
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(PlindaConfig {
            tasks: vec![],
            desired_workers: 1,
            hostfile: vec!["n01".into()],
            persistent: false,
        })),
        env(),
    );
    world.run_until(SimTime(2_000_000));
    assert_eq!(world.procs_named("plinda-worker").len(), 1);
    // Harness deposits a task tuple directly (an `out` from "nowhere").
    world.send_from_harness(
        server,
        Payload::Plinda(rb_proto::PlindaMsg::Out {
            tuple: rb_proto::Tuple(vec![
                rb_proto::TupleField::Str("task".into()),
                rb_proto::TupleField::Int(0),
                rb_proto::TupleField::Int(200),
            ]),
        }),
    );
    world.run_until(SimTime(4_000_000));
    // The worker computed it and deposited a result; total==0 means the
    // server never self-terminates, so check the trace.
    assert!(world.alive(server));
    let results: Vec<ProcId> = world.procs_named("plinda-worker");
    assert_eq!(results.len(), 1, "worker still attached");
}
