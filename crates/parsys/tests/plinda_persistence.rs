//! The "P" in PLinda: the tuple space is checkpointed to stable storage
//! and a restarted server recovers it — including rolling back tuples that
//! were withdrawn but never committed when the server died.

use rb_parsys::{decode_tuples, encode_tuples, ParsysPrograms, PlindaConfig, PlindaServer};
use rb_proto::{ExitStatus, Signal, Tuple, TupleField};
use rb_simcore::{Duration, SimTime};
use rb_simnet::{BasePrograms, FactoryChain, ProcEnv, World, WorldBuilder};

fn lab(n: usize) -> (World, Vec<rb_proto::MachineId>) {
    let mut b = WorldBuilder::new()
        .seed(47)
        .factory(FactoryChain::new().with(BasePrograms).with(ParsysPrograms));
    let ms = b.standard_lab(n);
    (b.build(), ms)
}

fn persistent_cfg(tasks: Vec<u64>, hosts: &[&str]) -> PlindaConfig {
    PlindaConfig {
        tasks,
        desired_workers: hosts.len() as u32,
        hostfile: hosts.iter().map(|s| s.to_string()).collect(),
        persistent: true,
    }
}

#[test]
fn encode_decode_roundtrip_simple() {
    let tuples = vec![
        Tuple(vec![TupleField::Str("task".into()), TupleField::Int(1)]),
        Tuple(vec![TupleField::Int(-42)]),
        Tuple(vec![]),
        Tuple(vec![TupleField::Str(String::new())]),
    ];
    let bytes = encode_tuples(&tuples);
    assert_eq!(decode_tuples(&bytes), Some(tuples));
}

#[test]
fn decode_rejects_corruption() {
    let tuples = vec![Tuple(vec![TupleField::Str("abc".into())])];
    let mut bytes = encode_tuples(&tuples);
    // Truncation.
    bytes.pop();
    assert_eq!(decode_tuples(&bytes), None);
    // Bad tag.
    let mut bytes = encode_tuples(&tuples);
    bytes[8] = 9;
    assert_eq!(decode_tuples(&bytes), None);
    // Trailing garbage.
    let mut bytes = encode_tuples(&tuples);
    bytes.push(0);
    assert_eq!(decode_tuples(&bytes), None);
}

#[test]
fn encode_decode_roundtrip_randomized() {
    // Seeded randomized roundtrip over arbitrary tuple shapes, including
    // empty tuples, empty spaces, and arbitrary printable strings.
    let mut rng = rb_simcore::SimRng::seeded(0x91da);
    for _ in 0..256 {
        let tuples: Vec<Tuple> = (0..rng.index(20))
            .map(|_| {
                Tuple(
                    (0..rng.index(6))
                        .map(|_| {
                            if rng.chance(0.5) {
                                TupleField::Int(rng.uniform_u64(0, u64::MAX - 1) as i64)
                            } else {
                                let s: String = (0..rng.index(17))
                                    .map(|_| (rng.uniform_u64(0x20, 0x7f) as u8) as char)
                                    .collect();
                                TupleField::Str(s)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let bytes = encode_tuples(&tuples);
        assert_eq!(decode_tuples(&bytes), Some(tuples));
    }
}

#[test]
fn server_crash_loses_nothing_with_persistence() {
    // 6 tasks, 2 workers. Kill the server mid-run (some tasks withdrawn,
    // some done). Restart it on the same machine: the recovered space must
    // contain every unfinished task (withdrawn ones rolled back), and the
    // job completes with all 6 results.
    let (mut world, ms) = lab(3);
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(persistent_cfg(
            vec![2_000; 6],
            &["n01", "n02"],
        ))),
        ProcEnv::user_standard("alice"),
    );
    world.run_until(SimTime(3_000_000));
    assert_eq!(world.procs_named("plinda-worker").len(), 2);
    // Mid-computation: two tasks are in workers' hands.
    world.kill_from_harness(server, Signal::Kill);
    world.run_until(SimTime(4_000_000));
    assert!(!world.alive(server));
    // The checkpoint survived the crash.
    assert!(world
        .disk_on(ms[0], "alice", rb_parsys::CHECKPOINT_FILE)
        .is_some());

    // The old workers are orphans of the dead server; clear them (their
    // in-flight work is already rolled back in the checkpoint).
    for w in world.procs_named("plinda-worker") {
        world.kill_from_harness(w, Signal::Kill);
    }
    world.run_until(SimTime(5_000_000));

    // Restart the server on the same machine as the same user.
    let server2 = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(persistent_cfg(
            vec![], // no fresh seeding: everything comes from the checkpoint
            &["n01", "n02"],
        ))),
        ProcEnv::user_standard("alice"),
    );
    let done = world.run_until_pred(SimTime(120_000_000), |w| !w.alive(server2));
    assert!(done, "restarted server never finished");
    assert_eq!(world.exit_status(server2), Some(ExitStatus::Success));
    assert!(world.trace().count("plinda.recover") >= 1);
    // Completion requires results == total; total after recovery is the
    // recovered task count, so a full completion proves nothing was lost.
    let complete = world.trace().last("plinda.complete").unwrap();
    assert!(complete.detail.contains("results=6"), "{}", complete.detail);
    // A clean completion removes the checkpoint.
    assert!(world
        .disk_on(ms[0], "alice", rb_parsys::CHECKPOINT_FILE)
        .is_none());
}

#[test]
fn non_persistent_server_loses_its_space() {
    let (mut world, ms) = lab(2);
    let mut cfg = persistent_cfg(vec![1_000; 4], &["n01"]);
    cfg.persistent = false;
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(cfg)),
        ProcEnv::user_standard("alice"),
    );
    world.run_until(SimTime(2_000_000));
    world.kill_from_harness(server, Signal::Kill);
    world.run_until(SimTime(3_000_000));
    assert!(world
        .disk_on(ms[0], "alice", rb_parsys::CHECKPOINT_FILE)
        .is_none());
}

#[test]
fn disk_survives_machine_crash() {
    // Stable storage semantics of the substrate itself.
    let (mut world, ms) = lab(2);
    let server = world.spawn_user(
        ms[0],
        Box::new(PlindaServer::new(persistent_cfg(vec![5_000; 3], &["n01"]))),
        ProcEnv::user_standard("alice"),
    );
    world.run_until(SimTime(2_000_000));
    world.set_machine_up(ms[0], false);
    world.run_until(SimTime(3_000_000));
    assert!(!world.alive(server));
    assert!(world
        .disk_on(ms[0], "alice", rb_parsys::CHECKPOINT_FILE)
        .is_some());
    world.set_machine_up(ms[0], true);
    let recovered = decode_tuples(
        world
            .disk_on(ms[0], "alice", rb_parsys::CHECKPOINT_FILE)
            .unwrap(),
    )
    .expect("checkpoint decodes");
    // All three tasks durable (none completed before the crash).
    let tasks = recovered
        .iter()
        .filter(|t| matches!(t.0.first(), Some(TupleField::Str(s)) if s == "task"))
        .count();
    assert_eq!(tasks, 3);
    let _ = Duration::ZERO;
}
