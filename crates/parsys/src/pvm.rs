//! A behavioral model of PVM 3: master and slave daemons, consoles, and
//! tasks.
//!
//! The properties the broker's mechanisms depend on are modeled faithfully:
//!
//! * the virtual machine grows by the **master pvmd issuing `rsh`** with an
//!   explicit host name (from `pvm> add <host>` or `pvm_addhosts()`);
//! * the master **refuses slaves from machines other than those it
//!   attempted to spawn on** — which is why the broker's default redirect
//!   path cannot work for PVM and the external-module path exists;
//! * failed `add` attempts are **tolerated** (the master notes the failure
//!   and keeps running) — which is what makes Phase I of the two-phase
//!   protocol safe;
//! * consoles are scriptable, which is what the five-line `pvm_grow`
//!   external module exploits.

use rb_proto::{
    CommandSpec, ConsoleCmd, CtlMsg, ExitStatus, Payload, ProcId, PvmMsg, RshHandle, Signal,
    TimerToken, VmId,
};
use rb_simcore::Duration;
use rb_simcore::FxHashMap;
use rb_simnet::{Behavior, Ctx};
use std::collections::VecDeque;

/// Service name a pvmd registers on its machine (the analogue of the
/// `/tmp/pvmd.<uid>` socket file a console uses to find its daemon).
pub const PVMD_SERVICE: &str = "pvmd";

/// One entry of the master's host table.
#[derive(Debug, Clone)]
struct HostEntry {
    hostname: String,
    slave: ProcId,
}

/// Configuration for a master pvmd.
#[derive(Debug, Clone, Default)]
pub struct PvmMasterConfig {
    /// Virtual-machine id (for traces).
    pub vm: VmId,
    /// Hosts to add immediately at startup (like a `pvm` hostfile).
    pub initial_hosts: Vec<String>,
    /// CPU cost of one task dispatched by `SpawnTasks`.
    pub default_task_millis: u64,
}

/// The master PVM daemon. Started by the first `pvm` console (modeled as
/// the job's root process).
pub struct PvmMaster {
    cfg: PvmMasterConfig,
    /// Slaves currently in the virtual machine.
    hosts: Vec<HostEntry>,
    /// Host names we have attempted to spawn on and not yet resolved;
    /// value is the console/task that asked (if any).
    pending_adds: FxHashMap<String, Option<ProcId>>,
    /// Adds waiting their turn: the real pvmd's host-startup protocol is
    /// single-threaded, so hosts are added one at a time.
    add_queue: VecDeque<(String, Option<ProcId>)>,
    /// The host currently being added.
    add_active: Option<String>,
    /// Outstanding rsh handles -> attempted host name.
    rsh_inflight: FxHashMap<RshHandle, String>,
    /// Open `parsys.grow` spans per host being added.
    grow_spans: FxHashMap<String, rb_simcore::SpanId>,
    /// Tasks completed (across the VM).
    tasks_done: u64,
    /// Tasks still running.
    tasks_running: u64,
    /// Round-robin dispatch cursor.
    rr: usize,
    own_host: String,
    /// Application processes to notify of task completions
    /// (`pvm_notify()`-style subscriptions).
    subscribers: Vec<ProcId>,
    started: bool,
    halting: bool,
}

impl PvmMaster {
    pub fn new(cfg: PvmMasterConfig) -> Self {
        PvmMaster {
            cfg,
            hosts: Vec::new(),
            pending_adds: FxHashMap::default(),
            add_queue: VecDeque::new(),
            add_active: None,
            rsh_inflight: FxHashMap::default(),
            grow_spans: FxHashMap::default(),
            tasks_done: 0,
            tasks_running: 0,
            rr: 0,
            own_host: String::new(),
            subscribers: Vec::new(),
            started: false,
            halting: false,
        }
    }

    fn begin_add(&mut self, ctx: &mut Ctx<'_>, host: String, origin: Option<ProcId>) {
        // The master's own host is in the virtual machine from the start;
        // a second `add` for any host already pending or present fails
        // fast, exactly like the real console's "already in virtual
        // machine" error.
        if host == self.own_host
            || self.pending_adds.contains_key(&host)
            || self.add_queue.iter().any(|(h, _)| *h == host)
            || self.hosts.iter().any(|h| h.hostname == host)
        {
            if let Some(origin) = origin {
                ctx.send(origin, Payload::Pvm(PvmMsg::AddResult { host, ok: false }));
            }
            return;
        }
        self.add_queue.push_back((host, origin));
        self.pump_adds(ctx);
    }

    /// Start the next queued add if none is in flight (the pvmd host-add
    /// protocol is serial).
    fn pump_adds(&mut self, ctx: &mut Ctx<'_>) {
        if self.add_active.is_some() {
            return;
        }
        let Some((host, origin)) = self.add_queue.pop_front() else {
            return;
        };
        ctx.trace("pvm.add.attempt", host.clone());
        let span = crate::open_grow_span(ctx, "pvm", &host);
        self.grow_spans.insert(host.clone(), span);
        self.add_active = Some(host.clone());
        self.pending_adds.insert(host.clone(), origin);
        let me = ctx.me();
        let vm = self.cfg.vm;
        let handle = ctx.rsh(&host, CommandSpec::PvmSlave { master: me, vm });
        self.rsh_inflight.insert(handle, host);
    }

    fn add_finished(&mut self, ctx: &mut Ctx<'_>, host: &str) {
        if self.add_active.as_deref() == Some(host) {
            self.add_active = None;
        }
        self.pump_adds(ctx);
    }

    fn fail_add(&mut self, ctx: &mut Ctx<'_>, host: &str) {
        ctx.trace("pvm.add.failed", host.to_string());
        if let Some(span) = self.grow_spans.remove(host) {
            ctx.close_span(span, "parsys.grow", "failed");
        }
        if let Some(origin) = self.pending_adds.remove(host).flatten() {
            ctx.send(
                origin,
                Payload::Pvm(PvmMsg::AddResult {
                    host: host.to_string(),
                    ok: false,
                }),
            );
        }
        self.add_finished(ctx, host);
    }

    fn dispatch_task(&mut self, ctx: &mut Ctx<'_>, cpu_millis: u64) {
        if self.hosts.is_empty() {
            // No slaves: the master's host runs it.
            ctx.cpu_burst(Duration::from_millis(cpu_millis));
            self.tasks_running += 1;
            return;
        }
        let target = self.hosts[self.rr % self.hosts.len()].slave;
        self.rr += 1;
        self.tasks_running += 1;
        ctx.send(target, Payload::Pvm(PvmMsg::RunTask { cpu_millis }));
    }

    /// Current host table (slave host names).
    fn conf(&self) -> Vec<String> {
        self.hosts.iter().map(|h| h.hostname.clone()).collect()
    }
}

impl Behavior for PvmMaster {
    fn name(&self) -> &'static str {
        "pvm-master"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // pvmd initialization, then register for console discovery.
        ctx.set_timer(Duration::from_millis(60));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        if !self.started {
            self.started = true;
            self.own_host = ctx.hostname().to_string();
            ctx.register_service(PVMD_SERVICE);
            ctx.trace("pvm.master.up", ctx.hostname());
            for host in self.cfg.initial_hosts.clone() {
                self.begin_add(ctx, host, None);
            }
        } else if self.halting {
            ctx.exit(ExitStatus::Success);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Payload) {
        match msg {
            Payload::Pvm(PvmMsg::AddHosts { hosts }) => {
                for h in hosts {
                    self.begin_add(ctx, h, Some(from));
                }
            }
            Payload::Pvm(PvmMsg::DeleteHost { host }) => {
                if let Some(pos) = self.hosts.iter().position(|h| h.hostname == host) {
                    let entry = self.hosts.remove(pos);
                    crate::shrink_span(ctx, "pvm", &host);
                    ctx.send(entry.slave, Payload::Pvm(PvmMsg::SlaveHalt));
                    ctx.trace("pvm.delete", host);
                }
            }
            Payload::Pvm(PvmMsg::Halt) => {
                ctx.trace("pvm.halt", "");
                // Adds still in flight are abandoned: close their spans.
                let mut open: Vec<rb_simcore::SpanId> =
                    std::mem::take(&mut self.grow_spans).into_values().collect();
                open.sort();
                for span in open {
                    ctx.close_span(span, "parsys.grow", "halted");
                }
                for h in &self.hosts {
                    ctx.send(h.slave, Payload::Pvm(PvmMsg::SlaveHalt));
                }
                self.hosts.clear();
                self.halting = true;
                ctx.set_timer(Duration::from_millis(50));
            }
            Payload::Pvm(PvmMsg::Conf { reply_to }) => {
                ctx.send(
                    reply_to,
                    Payload::Pvm(PvmMsg::ConfReply { hosts: self.conf() }),
                );
            }
            Payload::Pvm(PvmMsg::SpawnTasks { n, cpu_millis }) => {
                let cpu = if cpu_millis > 0 {
                    cpu_millis
                } else {
                    self.cfg.default_task_millis.max(1)
                };
                for _ in 0..n {
                    self.dispatch_task(ctx, cpu);
                }
            }
            Payload::Pvm(PvmMsg::Subscribe { listener })
                if !self.subscribers.contains(&listener) =>
            {
                self.subscribers.push(listener);
            }
            Payload::Pvm(PvmMsg::SlaveRegister { slave, hostname }) => {
                if self.pending_adds.contains_key(&hostname) {
                    let origin = self.pending_adds.remove(&hostname).flatten();
                    self.hosts.push(HostEntry {
                        hostname: hostname.clone(),
                        slave,
                    });
                    ctx.send(
                        slave,
                        Payload::Pvm(PvmMsg::SlaveAccepted { vm: self.cfg.vm }),
                    );
                    ctx.trace("pvm.slave.accepted", hostname.clone());
                    if let Some(span) = self.grow_spans.remove(&hostname) {
                        ctx.close_span(span, "parsys.grow", "ok");
                    }
                    if let Some(origin) = origin {
                        ctx.send(
                            origin,
                            Payload::Pvm(PvmMsg::AddResult {
                                host: hostname.clone(),
                                ok: true,
                            }),
                        );
                    }
                    self.add_finished(ctx, &hostname);
                } else {
                    // The defining PVM property: a slave from a machine the
                    // master did not attempt to spawn on is refused.
                    ctx.trace("pvm.slave.refused", hostname.clone());
                    ctx.send(
                        slave,
                        Payload::Pvm(PvmMsg::SlaveRefused {
                            reason: format!("host {hostname} was not added"),
                        }),
                    );
                }
            }
            Payload::Pvm(PvmMsg::SlaveExiting { slave }) => {
                if let Some(pos) = self.hosts.iter().position(|h| h.slave == slave) {
                    let entry = self.hosts.remove(pos);
                    ctx.trace("pvm.slave.gone", entry.hostname);
                }
            }
            Payload::Pvm(PvmMsg::TaskDone { slave }) => {
                self.tasks_done += 1;
                self.tasks_running = self.tasks_running.saturating_sub(1);
                ctx.trace("pvm.task.done", format_args!("total={}", self.tasks_done));
                for &l in &self.subscribers {
                    ctx.send(l, Payload::Pvm(PvmMsg::TaskDone { slave }));
                }
            }
            Payload::Ctl(CtlMsg::GrowHint { count }) => {
                // A self-scheduling PVM application calling pvm_addhosts()
                // with a symbolic name.
                for _ in 0..count {
                    self.begin_add(ctx, "anylinux".to_string(), None);
                }
            }
            Payload::Ctl(CtlMsg::Stop) => {
                self.on_message(ctx, from, Payload::Pvm(PvmMsg::Halt));
            }
            _ => {}
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, rb_proto::RshError>,
    ) {
        let Some(host) = self.rsh_inflight.remove(&handle) else {
            return;
        };
        match result {
            Ok(ExitStatus::Success) => {
                // Slave daemonized; registration drives the rest.
            }
            _ => {
                // Failed attempts to add machines are tolerated; this is
                // exactly what Phase I of the module protocol relies on.
                self.fail_add(ctx, &host);
            }
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        // A locally executed task finished.
        self.tasks_done += 1;
        self.tasks_running = self.tasks_running.saturating_sub(1);
        ctx.trace("pvm.task.done", format_args!("total={}", self.tasks_done));
        let me = ctx.me();
        for &l in &self.subscribers {
            ctx.send(l, Payload::Pvm(PvmMsg::TaskDone { slave: me }));
        }
    }
}

/// A slave PVM daemon, started on a remote machine by `rsh`.
pub struct PvmSlave {
    master: ProcId,
    vm: VmId,
    accepted: bool,
    /// In-flight local task CPU tokens.
    running: u64,
}

impl PvmSlave {
    pub fn new(master: ProcId, vm: VmId) -> Self {
        PvmSlave {
            master,
            vm,
            accepted: false,
            running: 0,
        }
    }
}

impl Behavior for PvmSlave {
    fn name(&self) -> &'static str {
        "pvmd"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        let hostname = ctx.hostname().to_string();
        // pvmd initialization cost then registration.
        let startup = ctx.cost().pvmd_startup;
        ctx.send_after(
            self.master,
            Payload::Pvm(PvmMsg::SlaveRegister {
                slave: me,
                hostname,
            }),
            startup,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        match msg {
            Payload::Pvm(PvmMsg::SlaveAccepted { vm }) => {
                debug_assert_eq!(vm, self.vm);
                self.accepted = true;
                ctx.register_service(PVMD_SERVICE);
                // Daemonize: the rsh that started us returns.
                ctx.detach();
                ctx.trace("pvm.slave.up", ctx.hostname());
            }
            Payload::Pvm(PvmMsg::SlaveRefused { reason }) => {
                ctx.trace("pvm.slave.refused.exit", reason);
                ctx.exit(ExitStatus::Failure(1));
            }
            Payload::Pvm(PvmMsg::RunTask { cpu_millis }) => {
                self.running += 1;
                ctx.cpu_burst(Duration::from_millis(cpu_millis));
            }
            Payload::Pvm(PvmMsg::SlaveHalt) => {
                ctx.exit(ExitStatus::Success);
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.running = self.running.saturating_sub(1);
        let me = ctx.me();
        ctx.send(self.master, Payload::Pvm(PvmMsg::TaskDone { slave: me }));
    }

    fn on_signal(&mut self, ctx: &mut Ctx<'_>, sig: Signal) {
        match sig {
            Signal::Term | Signal::Int => {
                // Graceful retreat: tell the master, then exit.
                let me = ctx.me();
                ctx.send(
                    self.master,
                    Payload::Pvm(PvmMsg::SlaveExiting { slave: me }),
                );
                ctx.trace("pvm.slave.retreat", ctx.hostname());
                ctx.exit(ExitStatus::Success);
            }
            _ => {}
        }
    }
}

/// A scripted PVM console: finds the local pvmd through the per-user
/// service registry and executes its commands in order, waiting for each
/// `add` to resolve — exactly what the `pvm_grow` module script does.
pub struct PvmConsole {
    script: Vec<ConsoleCmd>,
    idx: usize,
    master: Option<ProcId>,
    waiting_add: Option<String>,
    /// Results of `add` commands, for tests: (host, ok).
    results: Vec<(String, bool)>,
}

impl PvmConsole {
    pub fn new(script: Vec<ConsoleCmd>) -> Self {
        PvmConsole {
            script,
            idx: 0,
            master: None,
            waiting_add: None,
            results: Vec::new(),
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let Some(master) = self.master else {
            return;
        };
        loop {
            if self.waiting_add.is_some() {
                return;
            }
            let Some(cmd) = self.script.get(self.idx).cloned() else {
                ctx.exit(ExitStatus::Success);
                return;
            };
            self.idx += 1;
            match cmd {
                ConsoleCmd::Add(host) => {
                    self.waiting_add = Some(host.clone());
                    ctx.send(master, Payload::Pvm(PvmMsg::AddHosts { hosts: vec![host] }));
                    return;
                }
                ConsoleCmd::Delete(host) => {
                    ctx.send(master, Payload::Pvm(PvmMsg::DeleteHost { host }));
                }
                ConsoleCmd::Halt => {
                    ctx.send(master, Payload::Pvm(PvmMsg::Halt));
                    ctx.exit(ExitStatus::Success);
                    return;
                }
                ConsoleCmd::Spawn(n) => {
                    ctx.send(
                        master,
                        Payload::Pvm(PvmMsg::SpawnTasks { n, cpu_millis: 0 }),
                    );
                }
                ConsoleCmd::Quit => {
                    ctx.exit(ExitStatus::Success);
                    return;
                }
            }
        }
    }
}

impl Behavior for PvmConsole {
    fn name(&self) -> &'static str {
        "pvm-console"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Console startup: read .pvmrc, connect to the local pvmd.
        let startup = ctx.cost().pvm_console_startup;
        ctx.set_timer(startup);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        match ctx.lookup_service(PVMD_SERVICE) {
            Some(master) => {
                self.master = Some(master);
                self.step(ctx);
            }
            None => {
                ctx.trace("pvm.console.no-pvmd", ctx.hostname());
                ctx.exit(ExitStatus::Failure(1));
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        if let Payload::Pvm(PvmMsg::AddResult { host, ok }) = msg {
            if self.waiting_add.as_deref() == Some(host.as_str()) {
                self.waiting_add = None;
                self.results.push((host.clone(), ok));
                ctx.trace("pvm.console.add-result", format_args!("{host} ok={ok}"));
                self.step(ctx);
            }
        }
    }
}

/// Configuration for a self-scheduling PVM application.
#[derive(Debug, Clone)]
pub struct PvmAppConfig {
    /// Work units (CPU-milliseconds each) left in the application's bag.
    pub work: Vec<u64>,
    /// Keep this many tasks in flight per virtual-machine host.
    pub tasks_per_host: u32,
    /// Ask for another host (`pvm_addhosts("anylinux")`) whenever the
    /// remaining bag exceeds this many units per current host — the
    /// application's own adaptivity policy.
    pub grow_backlog_per_host: usize,
    /// Upper bound on self-initiated grows.
    pub max_hosts: usize,
}

impl Default for PvmAppConfig {
    fn default() -> Self {
        PvmAppConfig {
            work: Vec::new(),
            tasks_per_host: 2,
            grow_backlog_per_host: 8,
            max_hosts: 8,
        }
    }
}

/// A **self-scheduling PVM application task**: it farms its bag of work
/// over the virtual machine and — like the paper's "self-scheduling MPI
/// programs" — calls `pvm_addhosts()` with a symbolic host name whenever
/// its backlog outgrows the machines it has. Under the broker this makes
/// the application adaptive with no code written for the broker at all:
/// the `addhosts` turns into an intercepted `rsh anylinux`.
pub struct PvmApp {
    cfg: PvmAppConfig,
    master: Option<ProcId>,
    remaining: Vec<u64>,
    outstanding: u32,
    hosts: usize,
    grows_requested: usize,
    waiting_add: bool,
    conf_timer: Option<TimerToken>,
}

impl PvmApp {
    pub fn new(cfg: PvmAppConfig) -> Self {
        let remaining = cfg.work.clone();
        PvmApp {
            cfg,
            master: None,
            remaining,
            outstanding: 0,
            hosts: 1, // the master's own host
            grows_requested: 0,
            waiting_add: false,
            conf_timer: None,
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>) {
        let Some(master) = self.master else { return };
        // Keep tasks_per_host tasks in flight per VM host.
        let want = self.cfg.tasks_per_host as usize * self.hosts;
        while (self.outstanding as usize) < want {
            let Some(cpu) = self.remaining.pop() else {
                break;
            };
            self.outstanding += 1;
            ctx.send(
                master,
                Payload::Pvm(PvmMsg::SpawnTasks {
                    n: 1,
                    cpu_millis: cpu,
                }),
            );
        }
        // Self-scheduling adaptivity: more work than machines? Ask for one.
        if !self.waiting_add
            && self.hosts + self.grows_requested < self.cfg.max_hosts
            && self.remaining.len() > self.cfg.grow_backlog_per_host * self.hosts
        {
            self.waiting_add = true;
            self.grows_requested += 1;
            ctx.trace("pvm.app.addhosts", "anylinux");
            ctx.send(
                master,
                Payload::Pvm(PvmMsg::AddHosts {
                    hosts: vec!["anylinux".to_string()],
                }),
            );
        }
        if self.remaining.is_empty() && self.outstanding == 0 {
            ctx.trace("pvm.app.done", "");
            ctx.exit(ExitStatus::Success);
        }
    }
}

impl Behavior for PvmApp {
    fn name(&self) -> &'static str {
        "pvm-app"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Like any PVM task, find the local pvmd and enroll.
        ctx.set_timer(Duration::from_millis(40));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.conf_timer == Some(token) {
            // Periodic pvm_config(): module-driven grows complete
            // asynchronously, so the app polls the VM size.
            if let Some(master) = self.master {
                let me = ctx.me();
                ctx.send(master, Payload::Pvm(PvmMsg::Conf { reply_to: me }));
            }
            self.conf_timer = Some(ctx.set_timer(Duration::from_secs(2)));
            return;
        }
        match ctx.lookup_service(PVMD_SERVICE) {
            Some(master) => {
                self.master = Some(master);
                let me = ctx.me();
                ctx.send(master, Payload::Pvm(PvmMsg::Subscribe { listener: me }));
                self.conf_timer = Some(ctx.set_timer(Duration::from_secs(2)));
                self.dispatch(ctx);
            }
            None => {
                ctx.trace("pvm.app.no-pvmd", ctx.hostname());
                ctx.exit(ExitStatus::Failure(1));
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        match msg {
            Payload::Pvm(PvmMsg::TaskDone { .. }) => {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.dispatch(ctx);
            }
            Payload::Pvm(PvmMsg::AddResult { ok, host }) => {
                self.waiting_add = false;
                if ok {
                    self.hosts += 1;
                    ctx.trace("pvm.app.grown", host);
                } else {
                    // Tolerated, exactly like the paper requires. Under the
                    // broker, phase I always "fails" here while the real
                    // grow proceeds asynchronously; the periodic Conf poll
                    // picks the new host up.
                    ctx.trace("pvm.app.add-failed", host);
                }
                self.dispatch(ctx);
            }
            Payload::Pvm(PvmMsg::ConfReply { hosts }) => {
                let vm_size = hosts.len() + 1; // slaves + master host
                if vm_size > self.hosts {
                    ctx.trace("pvm.app.vm-size", format_args!("{vm_size}"));
                }
                self.hosts = vm_size;
                self.dispatch(ctx);
            }
            Payload::Ctl(CtlMsg::Stop) => {
                self.remaining.clear();
            }
            _ => {}
        }
    }
}
