//! A behavioral model of PLinda (Persistent Linda): a tuple-space server
//! with transactional `in`/`out` and anonymous bag-of-tasks workers.
//!
//! Like Calypso, PLinda programs accept anonymous machines, so the broker's
//! default redirect path applies. The *transactional* tuple withdrawal is
//! what makes worker eviction safe: a tuple held by a departing worker is
//! rolled back into the space and re-executed elsewhere.

use rb_proto::{
    CommandSpec, CtlMsg, ExitStatus, PatternField, Payload, PlindaMsg, ProcId, RshHandle, Signal,
    TimerToken, Tuple, TupleField, TuplePattern,
};
use rb_simcore::Duration;
use rb_simcore::FxHashMap;
use rb_simnet::{Behavior, Ctx};
use std::collections::VecDeque;

/// Service name the tuple-space server registers.
pub const PLINDA_SERVICE: &str = "plinda";

/// Configuration for a PLinda tuple-space server seeded with a task bag.
#[derive(Debug, Clone)]
pub struct PlindaConfig {
    /// CPU cost of each task tuple.
    pub tasks: Vec<u64>,
    /// How many workers to recruit at startup.
    pub desired_workers: u32,
    /// The job's `.hosts` file: host arguments cycled through when growing.
    pub hostfile: Vec<String>,
    /// Persist the tuple space to stable storage after every mutation —
    /// the "P" in PLinda. A restarted server on the same machine recovers
    /// the space (withdrawn-but-uncommitted tuples roll back).
    pub persistent: bool,
}

impl Default for PlindaConfig {
    fn default() -> Self {
        PlindaConfig {
            tasks: Vec::new(),
            desired_workers: 1,
            hostfile: vec!["anylinux".to_string()],
            persistent: false,
        }
    }
}

/// Checkpoint file name in the user's home directory.
pub const CHECKPOINT_FILE: &str = "plinda.ckpt";

/// Serialize a tuple list to a compact binary form (length-prefixed).
pub fn encode_tuples(tuples: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend((tuples.len() as u32).to_le_bytes());
    for t in tuples {
        out.extend((t.0.len() as u32).to_le_bytes());
        for f in &t.0 {
            match f {
                TupleField::Int(v) => {
                    out.push(0);
                    out.extend(v.to_le_bytes());
                }
                TupleField::Str(s) => {
                    out.push(1);
                    out.extend((s.len() as u32).to_le_bytes());
                    out.extend(s.as_bytes());
                }
            }
        }
    }
    out
}

/// Inverse of [`encode_tuples`]; `None` on any corruption.
pub fn decode_tuples(bytes: &[u8]) -> Option<Vec<Tuple>> {
    let mut i = 0usize;
    let mut take = |n: usize| -> Option<&[u8]> {
        let s = bytes.get(i..i + n)?;
        i += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    let mut tuples = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let arity = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let mut fields = Vec::with_capacity(arity.min(64));
        for _ in 0..arity {
            match take(1)?[0] {
                0 => {
                    let v = i64::from_le_bytes(take(8)?.try_into().ok()?);
                    fields.push(TupleField::Int(v));
                }
                1 => {
                    let len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
                    let s = std::str::from_utf8(take(len)?).ok()?;
                    fields.push(TupleField::Str(s.to_string()));
                }
                _ => return None,
            }
        }
        tuples.push(Tuple(fields));
    }
    if i == bytes.len() {
        Some(tuples)
    } else {
        None
    }
}

fn task_tuple(id: u64, cpu_millis: u64) -> Tuple {
    Tuple(vec![
        TupleField::Str("task".into()),
        TupleField::Int(id as i64),
        TupleField::Int(cpu_millis as i64),
    ])
}

/// The pattern workers use to withdraw work.
pub fn task_pattern() -> TuplePattern {
    TuplePattern(vec![
        PatternField::Exact(TupleField::Str("task".into())),
        PatternField::AnyInt,
        PatternField::AnyInt,
    ])
}

/// The tuple-space server (also the job's root process: it seeds the bag,
/// recruits workers, and collects results).
pub struct PlindaServer {
    cfg: PlindaConfig,
    space: Vec<Tuple>,
    /// Blocked `in` requests: (worker, pattern).
    pending_in: VecDeque<(ProcId, TuplePattern)>,
    /// Transactionally withdrawn tuples, by worker.
    in_progress: FxHashMap<ProcId, Tuple>,
    workers: FxHashMap<ProcId, String>,
    grow_inflight: FxHashMap<RshHandle, rb_simcore::SpanId>,
    hostfile_cursor: usize,
    results: u64,
    total: u64,
    stopping: bool,
}

impl PlindaServer {
    pub fn new(cfg: PlindaConfig) -> Self {
        let space: Vec<Tuple> = cfg
            .tasks
            .iter()
            .enumerate()
            .map(|(i, &cpu)| task_tuple(i as u64, cpu))
            .collect();
        let total = cfg.tasks.len() as u64;
        PlindaServer {
            cfg,
            space,
            pending_in: VecDeque::new(),
            in_progress: FxHashMap::default(),
            workers: FxHashMap::default(),
            grow_inflight: FxHashMap::default(),
            hostfile_cursor: 0,
            results: 0,
            total,
            stopping: false,
        }
    }

    /// Tuples currently in the space (test hook).
    pub fn space_len(&self) -> usize {
        self.space.len()
    }

    /// Persist the durable view of the space: resident tuples plus the
    /// rollback of every open transaction (a withdrawn tuple that was
    /// never committed must reappear after a crash).
    fn checkpoint(&mut self, ctx: &mut Ctx<'_>) {
        // No checkpoints while stopping: the clean-completion removal of
        // the file must be final even if stragglers' messages trickle in.
        if !self.cfg.persistent || self.stopping {
            return;
        }
        let mut durable: Vec<Tuple> = self.space.clone();
        let mut open: Vec<&Tuple> = self.in_progress.values().collect();
        open.sort_by_key(|t| format!("{t:?}"));
        durable.extend(open.into_iter().cloned());
        ctx.disk_write(CHECKPOINT_FILE, encode_tuples(&durable));
    }

    /// On startup, a persistent server recovers the space from disk.
    fn recover(&mut self, ctx: &mut Ctx<'_>) {
        if !self.cfg.persistent {
            return;
        }
        if let Some(bytes) = ctx.disk_read(CHECKPOINT_FILE) {
            if let Some(tuples) = decode_tuples(&bytes) {
                ctx.trace("plinda.recover", format_args!("{} tuples", tuples.len()));
                self.space = tuples;
                // Results already banked count toward completion.
                self.results = self
                    .space
                    .iter()
                    .filter(|t| matches!(t.0.first(), Some(TupleField::Str(s)) if s == "result"))
                    .count() as u64;
                let tasks = self
                    .space
                    .iter()
                    .filter(|t| matches!(t.0.first(), Some(TupleField::Str(s)) if s == "task"))
                    .count() as u64;
                // A restarted server seeded with nothing derives its goal
                // from the recovered space.
                if self.total == 0 {
                    self.total = tasks + self.results;
                }
            } else {
                ctx.trace("plinda.recover.corrupt", "ignoring checkpoint");
            }
        }
    }

    fn try_grow(&mut self, ctx: &mut Ctx<'_>, count: u32) {
        if self.cfg.hostfile.is_empty() {
            return;
        }
        for _ in 0..count {
            let host = self.cfg.hostfile[self.hostfile_cursor % self.cfg.hostfile.len()].clone();
            self.hostfile_cursor += 1;
            let me = ctx.me();
            ctx.trace("plinda.grow.attempt", host.clone());
            let span = crate::open_grow_span(ctx, "plinda", &host);
            let handle = ctx.rsh(&host, CommandSpec::PlindaWorker { server: me });
            self.grow_inflight.insert(handle, span);
        }
    }

    /// Serve an `in` request if a matching tuple is available; otherwise
    /// block it.
    fn serve_in(&mut self, ctx: &mut Ctx<'_>, worker: ProcId, pattern: TuplePattern) {
        if let Some(pos) = self.space.iter().position(|t| pattern.matches(t)) {
            let tuple = self.space.remove(pos);
            // Transaction open: remember the withdrawal.
            self.in_progress.insert(worker, tuple.clone());
            ctx.send(worker, Payload::Plinda(PlindaMsg::InReply { tuple }));
        } else {
            self.pending_in.push_back((worker, pattern));
        }
    }

    /// After the space gained tuples, retry blocked `in`s.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let mut still_blocked = VecDeque::new();
        while let Some((worker, pattern)) = self.pending_in.pop_front() {
            if let Some(pos) = self.space.iter().position(|t| pattern.matches(t)) {
                let tuple = self.space.remove(pos);
                self.in_progress.insert(worker, tuple.clone());
                ctx.send(worker, Payload::Plinda(PlindaMsg::InReply { tuple }));
            } else {
                still_blocked.push_back((worker, pattern));
            }
        }
        self.pending_in = still_blocked;
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.stopping {
            return;
        }
        self.stopping = true;
        let mut inflight: Vec<rb_simcore::SpanId> = std::mem::take(&mut self.grow_inflight)
            .into_values()
            .collect();
        inflight.sort();
        for span in inflight {
            ctx.close_span(span, "parsys.grow", "stopping");
        }
        if self.cfg.persistent {
            ctx.disk_remove(CHECKPOINT_FILE);
        }
        let mut workers: Vec<ProcId> = self.workers.keys().copied().collect();
        workers.sort();
        for w in workers {
            ctx.send(w, Payload::Plinda(PlindaMsg::SpaceClosed));
        }
        ctx.trace("plinda.complete", format_args!("results={}", self.results));
        ctx.set_timer(Duration::from_millis(20));
    }
}

impl Behavior for PlindaServer {
    fn name(&self) -> &'static str {
        "plinda-server"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.register_service(PLINDA_SERVICE);
        ctx.trace("plinda.server.up", ctx.hostname());
        self.recover(ctx);
        self.checkpoint(ctx);
        let want = self.cfg.desired_workers;
        self.try_grow(ctx, want);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        if self.stopping {
            ctx.exit(ExitStatus::Success);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Payload) {
        match msg {
            Payload::Plinda(PlindaMsg::WorkerRegister { worker, hostname }) => {
                self.workers.insert(worker, hostname.clone());
                ctx.trace("plinda.worker.joined", hostname);
                ctx.send(worker, Payload::Plinda(PlindaMsg::WorkerWelcome));
            }
            Payload::Plinda(PlindaMsg::In { pattern }) => {
                self.serve_in(ctx, from, pattern);
                self.checkpoint(ctx);
            }
            Payload::Plinda(PlindaMsg::Out { tuple }) => {
                // An `out` from a worker holding a withdrawn tuple commits
                // its transaction.
                self.in_progress.remove(&from);
                let is_result =
                    matches!(tuple.0.first(), Some(TupleField::Str(s)) if s == "result");
                self.space.push(tuple);
                self.pump(ctx);
                self.checkpoint(ctx);
                if is_result {
                    self.results += 1;
                    if self.total > 0 && self.results >= self.total {
                        self.finish(ctx);
                    }
                }
            }
            Payload::Plinda(PlindaMsg::WorkerLeaving { worker }) => {
                // Transaction rollback: the withdrawn tuple returns.
                if let Some(tuple) = self.in_progress.remove(&worker) {
                    ctx.trace("plinda.rollback", format_args!("{tuple:?}"));
                    self.space.push(tuple);
                }
                self.pending_in.retain(|(w, _)| *w != worker);
                if let Some(host) = self.workers.remove(&worker) {
                    ctx.trace("plinda.worker.gone", host);
                }
                self.pump(ctx);
                self.checkpoint(ctx);
            }
            Payload::Ctl(CtlMsg::GrowHint { count }) => {
                self.try_grow(ctx, count);
            }
            Payload::Ctl(CtlMsg::Stop) => {
                self.finish(ctx);
            }
            _ => {}
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, rb_proto::RshError>,
    ) {
        if let Some(span) = self.grow_inflight.remove(&handle) {
            if matches!(result, Ok(ExitStatus::Success)) {
                ctx.close_span(span, "parsys.grow", "ok");
            } else {
                ctx.trace("plinda.grow.failed", format_args!("{result:?}"));
                ctx.close_span(span, "parsys.grow", "failed");
            }
        }
    }
}

/// A PLinda worker: withdraw a task tuple, compute, deposit a result,
/// repeat.
pub struct PlindaWorker {
    server: ProcId,
    current: Option<(u64, u64)>,
    leaving: bool,
}

impl PlindaWorker {
    pub fn new(server: ProcId) -> Self {
        PlindaWorker {
            server,
            current: None,
            leaving: false,
        }
    }

    fn request_task(&self, ctx: &mut Ctx<'_>) {
        ctx.send(
            self.server,
            Payload::Plinda(PlindaMsg::In {
                pattern: task_pattern(),
            }),
        );
    }
}

impl Behavior for PlindaWorker {
    fn name(&self) -> &'static str {
        "plinda-worker"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        let hostname = ctx.hostname().to_string();
        let startup = ctx.cost().plinda_worker_startup;
        ctx.send_after(
            self.server,
            Payload::Plinda(PlindaMsg::WorkerRegister {
                worker: me,
                hostname,
            }),
            startup,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        if self.leaving {
            return;
        }
        match msg {
            Payload::Plinda(PlindaMsg::WorkerWelcome) => {
                ctx.detach();
                ctx.trace("plinda.worker.up", ctx.hostname());
                self.request_task(ctx);
            }
            Payload::Plinda(PlindaMsg::InReply { tuple }) => {
                if let [TupleField::Str(tag), TupleField::Int(id), TupleField::Int(cpu)] =
                    &tuple.0[..]
                {
                    if tag == "task" {
                        self.current = Some((*id as u64, *cpu as u64));
                        ctx.cpu_burst(Duration::from_millis((*cpu).max(0) as u64));
                    }
                }
            }
            Payload::Plinda(PlindaMsg::SpaceClosed) => {
                ctx.exit(ExitStatus::Success);
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if let Some((id, _)) = self.current.take() {
            ctx.send(
                self.server,
                Payload::Plinda(PlindaMsg::Out {
                    tuple: Tuple(vec![
                        TupleField::Str("result".into()),
                        TupleField::Int(id as i64),
                    ]),
                }),
            );
            self.request_task(ctx);
        }
    }

    fn on_signal(&mut self, ctx: &mut Ctx<'_>, sig: Signal) {
        match sig {
            Signal::Term | Signal::Int => {
                if self.leaving {
                    return;
                }
                self.leaving = true;
                let me = ctx.me();
                ctx.send(
                    self.server,
                    Payload::Plinda(PlindaMsg::WorkerLeaving { worker: me }),
                );
                ctx.trace("plinda.worker.retreat", ctx.hostname());
                let retreat = ctx.cost().graceful_retreat;
                ctx.set_timer(retreat);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        if self.leaving {
            ctx.exit(ExitStatus::Success);
        }
    }
}
