//! # rb-parsys — commodity parallel programming systems
//!
//! Behavioral models of the four systems the paper's evaluation manages
//! with ResourceBroker, **unmodified**:
//!
//! | system | grows by | accepts anonymous machines? | broker path |
//! |--------|----------|------------------------------|-------------|
//! | PVM    | master pvmd `rsh <host>` | **no** — refuses unexpected slaves | external modules (two-phase) |
//! | LAM/MPI| origin daemon `rsh <host>` | **no** | external modules (two-phase) |
//! | Calypso| master `rsh <host>` per worker | **yes** | default (redirect) |
//! | PLinda | server `rsh <host>` per worker | **yes** | default (redirect) |
//! | pmake  | one `rsh <host>` per recipe | n/a (plain commands) | default (redirect) |
//!
//! Each system is a set of [`rb_simnet::Behavior`] state machines plus an
//! intra-job resource manager (host tables, task scheduling, graceful
//! retreat on SIGTERM). The [`ParsysPrograms`] factory installs the
//! remotely-spawnable programs (slaves, nodes, workers, consoles) into a
//! simulated world, the way binaries are installed on cluster machines.

pub mod calypso;
pub mod lam;
pub mod plinda;
pub mod pmake;
pub mod protocol;
pub mod pvm;

use rb_proto::CommandSpec;
use rb_simnet::{Behavior, Ctx, ProgramFactory};

/// Open a `parsys.grow` span for one grow attempt of `system` toward
/// `host`. The span is a local root (the rsh' interception beneath it
/// builds its own `rsh.request` tree); the `job=` field ties it to the
/// job for the linter and the latency breakdowns.
pub(crate) fn open_grow_span(ctx: &mut Ctx<'_>, system: &str, host: &str) -> rb_simcore::SpanId {
    match ctx.job() {
        Some(job) => ctx.open_span(
            rb_simcore::SpanId::NONE,
            "parsys.grow",
            format_args!("{system} {host} job={job}"),
        ),
        None => ctx.open_span(
            rb_simcore::SpanId::NONE,
            "parsys.grow",
            format_args!("{system} {host}"),
        ),
    }
}

/// Record a shrink decision as an instant `parsys.shrink` span (the
/// vacate interval itself is covered by the release path's spans).
pub(crate) fn shrink_span(ctx: &mut Ctx<'_>, system: &str, host: &str) {
    let span = match ctx.job() {
        Some(job) => ctx.open_span(
            rb_simcore::SpanId::NONE,
            "parsys.shrink",
            format_args!("{system} {host} job={job}"),
        ),
        None => ctx.open_span(
            rb_simcore::SpanId::NONE,
            "parsys.shrink",
            format_args!("{system} {host}"),
        ),
    };
    ctx.close_span(span, "parsys.shrink", "signaled");
}

pub use calypso::{CalypsoConfig, CalypsoMaster, CalypsoWorker, TaskBag, CALYPSO_SERVICE};
pub use lam::{LamConsole, LamNode, LamOrigin, LamOriginConfig, LAMD_SERVICE};
pub use plinda::{
    decode_tuples, encode_tuples, task_pattern, PlindaConfig, PlindaServer, PlindaWorker,
    CHECKPOINT_FILE, PLINDA_SERVICE,
};
pub use pmake::{MakeRule, Pmake, PmakeConfig};
pub use protocol::protocol_specs;
pub use pvm::{
    PvmApp, PvmAppConfig, PvmConsole, PvmMaster, PvmMasterConfig, PvmSlave, PVMD_SERVICE,
};

/// Program factory for everything the parallel systems spawn remotely.
pub struct ParsysPrograms;

impl ProgramFactory for ParsysPrograms {
    fn build(&self, cmd: &CommandSpec) -> Option<Box<dyn Behavior>> {
        match cmd {
            CommandSpec::PvmSlave { master, vm } => Some(Box::new(PvmSlave::new(*master, *vm))),
            CommandSpec::PvmConsole { script } => Some(Box::new(PvmConsole::new(script.clone()))),
            CommandSpec::LamNode { origin, session } => {
                Some(Box::new(LamNode::new(*origin, *session)))
            }
            CommandSpec::LamConsole { script } => Some(Box::new(LamConsole::new(script.clone()))),
            CommandSpec::CalypsoWorker { master } => Some(Box::new(CalypsoWorker::new(*master))),
            CommandSpec::PlindaWorker { server } => Some(Box::new(PlindaWorker::new(*server))),
            _ => None,
        }
    }
}
