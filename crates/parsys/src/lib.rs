//! # rb-parsys — commodity parallel programming systems
//!
//! Behavioral models of the four systems the paper's evaluation manages
//! with ResourceBroker, **unmodified**:
//!
//! | system | grows by | accepts anonymous machines? | broker path |
//! |--------|----------|------------------------------|-------------|
//! | PVM    | master pvmd `rsh <host>` | **no** — refuses unexpected slaves | external modules (two-phase) |
//! | LAM/MPI| origin daemon `rsh <host>` | **no** | external modules (two-phase) |
//! | Calypso| master `rsh <host>` per worker | **yes** | default (redirect) |
//! | PLinda | server `rsh <host>` per worker | **yes** | default (redirect) |
//! | pmake  | one `rsh <host>` per recipe | n/a (plain commands) | default (redirect) |
//!
//! Each system is a set of [`rb_simnet::Behavior`] state machines plus an
//! intra-job resource manager (host tables, task scheduling, graceful
//! retreat on SIGTERM). The [`ParsysPrograms`] factory installs the
//! remotely-spawnable programs (slaves, nodes, workers, consoles) into a
//! simulated world, the way binaries are installed on cluster machines.

pub mod calypso;
pub mod lam;
pub mod plinda;
pub mod pmake;
pub mod protocol;
pub mod pvm;

use rb_proto::CommandSpec;
use rb_simnet::{Behavior, ProgramFactory};

pub use calypso::{CalypsoConfig, CalypsoMaster, CalypsoWorker, TaskBag, CALYPSO_SERVICE};
pub use lam::{LamConsole, LamNode, LamOrigin, LamOriginConfig, LAMD_SERVICE};
pub use plinda::{
    decode_tuples, encode_tuples, task_pattern, PlindaConfig, PlindaServer, PlindaWorker,
    CHECKPOINT_FILE, PLINDA_SERVICE,
};
pub use pmake::{MakeRule, Pmake, PmakeConfig};
pub use protocol::protocol_specs;
pub use pvm::{
    PvmApp, PvmAppConfig, PvmConsole, PvmMaster, PvmMasterConfig, PvmSlave, PVMD_SERVICE,
};

/// Program factory for everything the parallel systems spawn remotely.
pub struct ParsysPrograms;

impl ProgramFactory for ParsysPrograms {
    fn build(&self, cmd: &CommandSpec) -> Option<Box<dyn Behavior>> {
        match cmd {
            CommandSpec::PvmSlave { master, vm } => Some(Box::new(PvmSlave::new(*master, *vm))),
            CommandSpec::PvmConsole { script } => Some(Box::new(PvmConsole::new(script.clone()))),
            CommandSpec::LamNode { origin, session } => {
                Some(Box::new(LamNode::new(*origin, *session)))
            }
            CommandSpec::LamConsole { script } => Some(Box::new(LamConsole::new(script.clone()))),
            CommandSpec::CalypsoWorker { master } => Some(Box::new(CalypsoWorker::new(*master))),
            CommandSpec::PlindaWorker { server } => Some(Box::new(PlindaWorker::new(*server))),
            _ => None,
        }
    }
}
