//! Protocol participation declared by the four programming systems'
//! behaviors (PVM, LAM, Calypso, PLinda) plus `pmake`.
//!
//! See `rb_broker::protocol` for the broker-side specs; `rb-analyze`
//! merges both sets into one send/handle graph.

use rb_proto::{ProtocolSpec, ReqEdge};

/// The master pvmd (`pvm.rs`).
pub const PVM_MASTER_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "pvm-master",
    sends: &[
        "Pvm::AddResult",
        "Pvm::ConfReply",
        "Pvm::RunTask",
        "Pvm::SlaveAccepted",
        "Pvm::SlaveRefused",
        "Pvm::SlaveHalt",
        // Task completions are forwarded to `Subscribe`d listeners.
        "Pvm::TaskDone",
    ],
    handles: &[
        "Pvm::AddHosts",
        "Pvm::DeleteHost",
        "Pvm::Halt",
        "Pvm::Conf",
        "Pvm::SpawnTasks",
        "Pvm::Subscribe",
        "Pvm::SlaveRegister",
        "Pvm::SlaveExiting",
        "Pvm::TaskDone",
        "Ctl::GrowHint",
        "Ctl::Stop",
    ],
    requests: &[
        ReqEdge {
            // An `add` resolves to AddResult once the rsh attempt settles.
            request: "Pvm::AddHosts",
            replies: &["Pvm::AddResult"],
            has_timeout: false,
        },
        ReqEdge {
            request: "Pvm::Conf",
            replies: &["Pvm::ConfReply"],
            has_timeout: false,
        },
        ReqEdge {
            // Registration is answered, never silently dropped: PVM
            // refuses machines it did not attempt to spawn on.
            request: "Pvm::SlaveRegister",
            replies: &["Pvm::SlaveAccepted", "Pvm::SlaveRefused"],
            has_timeout: false,
        },
    ],
};

/// A slave pvmd (`pvm.rs`).
pub const PVM_SLAVE_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "pvmd",
    sends: &["Pvm::SlaveRegister", "Pvm::SlaveExiting", "Pvm::TaskDone"],
    handles: &[
        "Pvm::SlaveAccepted",
        "Pvm::SlaveRefused",
        "Pvm::RunTask",
        "Pvm::SlaveHalt",
    ],
    requests: &[],
};

/// A scripted PVM console (`pvm.rs`), as spawned by the pvm module.
pub const PVM_CONSOLE_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "pvm-console",
    sends: &[
        "Pvm::AddHosts",
        "Pvm::DeleteHost",
        "Pvm::Halt",
        "Pvm::SpawnTasks",
    ],
    handles: &["Pvm::AddResult"],
    requests: &[],
};

/// A self-scheduling PVM application task (`pvm.rs`).
pub const PVM_APP_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "pvm-app",
    sends: &[
        "Pvm::SpawnTasks",
        "Pvm::AddHosts",
        "Pvm::Conf",
        "Pvm::Subscribe",
    ],
    handles: &[
        "Pvm::TaskDone",
        "Pvm::AddResult",
        "Pvm::ConfReply",
        "Ctl::Stop",
    ],
    requests: &[],
};

/// The LAM session origin (`lam.rs`).
pub const LAM_ORIGIN_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "lam-origin",
    sends: &[
        "Lam::GrowResult",
        "Lam::NodeAccepted",
        "Lam::NodeRefused",
        "Lam::NodeHalt",
        // Self-scheduled work units are forwarded to member nodes.
        "Lam::RunWork",
    ],
    handles: &[
        "Lam::GrowNode",
        "Lam::ShrinkNode",
        "Lam::Halt",
        "Lam::NodeRegister",
        "Lam::NodeExiting",
        "Lam::RunWork",
        "Lam::WorkDone",
        "Ctl::GrowHint",
        "Ctl::Stop",
    ],
    requests: &[
        ReqEdge {
            request: "Lam::GrowNode",
            replies: &["Lam::GrowResult"],
            has_timeout: false,
        },
        ReqEdge {
            request: "Lam::NodeRegister",
            replies: &["Lam::NodeAccepted", "Lam::NodeRefused"],
            has_timeout: false,
        },
    ],
};

/// A LAM node daemon (`lam.rs`).
pub const LAM_NODE_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "lamd",
    sends: &["Lam::NodeRegister", "Lam::NodeExiting", "Lam::WorkDone"],
    handles: &[
        "Lam::NodeAccepted",
        "Lam::NodeRefused",
        "Lam::RunWork",
        "Lam::NodeHalt",
    ],
    requests: &[],
};

/// A scripted LAM console (`lam.rs`), as spawned by the lam module.
pub const LAM_CONSOLE_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "lam-console",
    sends: &[
        "Lam::GrowNode",
        "Lam::ShrinkNode",
        "Lam::Halt",
        "Lam::RunWork",
    ],
    handles: &["Lam::GrowResult"],
    requests: &[],
};

/// The Calypso master (`calypso.rs`).
pub const CALYPSO_MASTER_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "calypso-master",
    sends: &[
        "Calypso::WorkerWelcome",
        "Calypso::TaskAssign",
        "Calypso::Idle",
        "Calypso::JobComplete",
    ],
    handles: &[
        "Calypso::WorkerRegister",
        "Calypso::TaskResult",
        "Calypso::WorkerLeaving",
        "Ctl::GrowHint",
        "Ctl::ShrinkHint",
        "Ctl::Stop",
    ],
    requests: &[ReqEdge {
        // Anonymous workers are always welcomed — this is what makes the
        // broker's default redirect path work for Calypso.
        request: "Calypso::WorkerRegister",
        replies: &["Calypso::WorkerWelcome"],
        has_timeout: false,
    }],
};

/// A Calypso worker (`calypso.rs`).
pub const CALYPSO_WORKER_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "calypso-worker",
    sends: &[
        "Calypso::WorkerRegister",
        "Calypso::TaskResult",
        "Calypso::WorkerLeaving",
    ],
    handles: &[
        "Calypso::WorkerWelcome",
        "Calypso::TaskAssign",
        "Calypso::Idle",
        "Calypso::JobComplete",
    ],
    requests: &[],
};

/// The PLinda tuple-space server (`plinda.rs`).
pub const PLINDA_SERVER_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "plinda-server",
    sends: &[
        "Plinda::InReply",
        "Plinda::WorkerWelcome",
        "Plinda::SpaceClosed",
    ],
    handles: &[
        "Plinda::Out",
        "Plinda::In",
        "Plinda::WorkerRegister",
        "Plinda::WorkerLeaving",
        "Ctl::GrowHint",
        "Ctl::Stop",
    ],
    requests: &[
        ReqEdge {
            // `in()` blocks until a tuple matches; there is deliberately
            // no timeout (Linda semantics), but the reply edge must exist.
            request: "Plinda::In",
            replies: &["Plinda::InReply"],
            has_timeout: false,
        },
        ReqEdge {
            request: "Plinda::WorkerRegister",
            replies: &["Plinda::WorkerWelcome"],
            has_timeout: false,
        },
    ],
};

/// A PLinda worker (`plinda.rs`).
pub const PLINDA_WORKER_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "plinda-worker",
    sends: &[
        "Plinda::Out",
        "Plinda::In",
        "Plinda::WorkerRegister",
        "Plinda::WorkerLeaving",
    ],
    handles: &[
        "Plinda::InReply",
        "Plinda::WorkerWelcome",
        "Plinda::SpaceClosed",
    ],
    requests: &[],
};

/// The parallel-make driver (`pmake.rs`) — pure rsh fan-out, no protocol
/// of its own beyond the stop control.
pub const PMAKE_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "pmake",
    sends: &[],
    handles: &["Ctl::Stop"],
    requests: &[],
};

/// Every spec this crate contributes to the protocol graph.
pub fn protocol_specs() -> Vec<&'static ProtocolSpec> {
    vec![
        &PVM_MASTER_SPEC,
        &PVM_SLAVE_SPEC,
        &PVM_CONSOLE_SPEC,
        &PVM_APP_SPEC,
        &LAM_ORIGIN_SPEC,
        &LAM_NODE_SPEC,
        &LAM_CONSOLE_SPEC,
        &CALYPSO_MASTER_SPEC,
        &CALYPSO_WORKER_SPEC,
        &PLINDA_SERVER_SPEC,
        &PLINDA_WORKER_SPEC,
        &PMAKE_SPEC,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every declared `ReqEdge` must name catalog variants: requests from
    /// `REQUEST_VARIANTS`, replies from `ALL_VARIANTS`.
    #[test]
    fn req_edges_stay_in_the_catalog() {
        for spec in protocol_specs() {
            let errors = spec.edge_catalog_errors();
            assert!(errors.is_empty(), "{}", errors.join("\n"));
        }
    }
}
