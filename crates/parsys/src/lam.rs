//! A behavioral model of LAM/MPI: the session origin daemon (`lamboot`
//! host), node daemons, and scripted consoles (`lamgrow`/`lamshrink`/
//! `lamhalt`).
//!
//! LAM shares PVM's critical property — **nodes from machines the origin
//! did not attempt to boot are refused** — but has its own boot protocol
//! and heavier startup costs, demonstrating that the broker's external
//! module mechanism generalizes across programming systems without
//! modifying the broker itself.

use rb_proto::{
    CommandSpec, ConsoleCmd, CtlMsg, ExitStatus, LamMsg, Payload, ProcId, RshHandle, SessionId,
    Signal, TimerToken,
};
use rb_simcore::Duration;
use rb_simcore::FxHashMap;
use rb_simnet::{Behavior, Ctx};
use std::collections::VecDeque;

/// Service name the origin daemon registers for console discovery.
pub const LAMD_SERVICE: &str = "lamd";

/// Configuration for a LAM session origin.
#[derive(Debug, Clone, Default)]
pub struct LamOriginConfig {
    pub session: SessionId,
    /// Boot schema (hosts booted at `lamboot` time).
    pub boot_hosts: Vec<String>,
    /// CPU cost of one self-scheduled work unit.
    pub work_millis: u64,
}

#[derive(Debug, Clone)]
struct NodeEntry {
    hostname: String,
    node: ProcId,
}

/// The LAM session origin (the daemon `lamboot` leaves on the origin host).
pub struct LamOrigin {
    cfg: LamOriginConfig,
    nodes: Vec<NodeEntry>,
    pending: FxHashMap<String, Option<ProcId>>,
    /// Boot/grow requests waiting their turn (LAM's boot protocol brings
    /// nodes up one at a time).
    grow_queue: VecDeque<(String, Option<ProcId>)>,
    grow_active: Option<String>,
    rsh_inflight: FxHashMap<RshHandle, String>,
    /// Open `parsys.grow` spans per host being booted.
    grow_spans: FxHashMap<String, rb_simcore::SpanId>,
    work_done: u64,
    rr: usize,
    own_host: String,
    started: bool,
    halting: bool,
}

impl LamOrigin {
    pub fn new(cfg: LamOriginConfig) -> Self {
        LamOrigin {
            cfg,
            nodes: Vec::new(),
            pending: FxHashMap::default(),
            grow_queue: VecDeque::new(),
            grow_active: None,
            rsh_inflight: FxHashMap::default(),
            grow_spans: FxHashMap::default(),
            work_done: 0,
            rr: 0,
            own_host: String::new(),
            started: false,
            halting: false,
        }
    }

    fn begin_grow(&mut self, ctx: &mut Ctx<'_>, host: String, origin: Option<ProcId>) {
        if host == self.own_host
            || self.pending.contains_key(&host)
            || self.grow_queue.iter().any(|(h, _)| *h == host)
            || self.nodes.iter().any(|n| n.hostname == host)
        {
            if let Some(o) = origin {
                ctx.send(o, Payload::Lam(LamMsg::GrowResult { host, ok: false }));
            }
            return;
        }
        self.grow_queue.push_back((host, origin));
        self.pump_grows(ctx);
    }

    fn pump_grows(&mut self, ctx: &mut Ctx<'_>) {
        if self.grow_active.is_some() {
            return;
        }
        let Some((host, origin)) = self.grow_queue.pop_front() else {
            return;
        };
        ctx.trace("lam.grow.attempt", host.clone());
        let span = crate::open_grow_span(ctx, "lam", &host);
        self.grow_spans.insert(host.clone(), span);
        self.grow_active = Some(host.clone());
        self.pending.insert(host.clone(), origin);
        let me = ctx.me();
        let session = self.cfg.session;
        let handle = ctx.rsh(
            &host,
            CommandSpec::LamNode {
                origin: me,
                session,
            },
        );
        self.rsh_inflight.insert(handle, host);
    }

    fn grow_finished(&mut self, ctx: &mut Ctx<'_>, host: &str) {
        if self.grow_active.as_deref() == Some(host) {
            self.grow_active = None;
        }
        self.pump_grows(ctx);
    }

    fn fail_grow(&mut self, ctx: &mut Ctx<'_>, host: &str) {
        ctx.trace("lam.grow.failed", host.to_string());
        if let Some(span) = self.grow_spans.remove(host) {
            ctx.close_span(span, "parsys.grow", "failed");
        }
        if let Some(origin) = self.pending.remove(host).flatten() {
            ctx.send(
                origin,
                Payload::Lam(LamMsg::GrowResult {
                    host: host.to_string(),
                    ok: false,
                }),
            );
        }
        self.grow_finished(ctx, host);
    }
}

impl Behavior for LamOrigin {
    fn name(&self) -> &'static str {
        "lam-origin"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // LAM's boot protocol does more handshaking than PVM's.
        ctx.set_timer(Duration::from_millis(120));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        if !self.started {
            self.started = true;
            self.own_host = ctx.hostname().to_string();
            ctx.register_service(LAMD_SERVICE);
            ctx.trace("lam.origin.up", ctx.hostname());
            for host in self.cfg.boot_hosts.clone() {
                self.begin_grow(ctx, host, None);
            }
        } else if self.halting {
            ctx.exit(ExitStatus::Success);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Payload) {
        match msg {
            Payload::Lam(LamMsg::GrowNode { host }) => {
                self.begin_grow(ctx, host, Some(from));
            }
            Payload::Lam(LamMsg::ShrinkNode { host }) => {
                if let Some(pos) = self.nodes.iter().position(|n| n.hostname == host) {
                    let entry = self.nodes.remove(pos);
                    crate::shrink_span(ctx, "lam", &host);
                    ctx.send(entry.node, Payload::Lam(LamMsg::NodeHalt));
                    ctx.trace("lam.shrink", host);
                }
            }
            Payload::Lam(LamMsg::Halt) => {
                ctx.trace("lam.halt", "");
                let mut open: Vec<rb_simcore::SpanId> =
                    std::mem::take(&mut self.grow_spans).into_values().collect();
                open.sort();
                for span in open {
                    ctx.close_span(span, "parsys.grow", "halted");
                }
                for n in &self.nodes {
                    ctx.send(n.node, Payload::Lam(LamMsg::NodeHalt));
                }
                self.nodes.clear();
                self.halting = true;
                ctx.set_timer(Duration::from_millis(80));
            }
            Payload::Lam(LamMsg::NodeRegister { node, hostname }) => {
                if self.pending.contains_key(&hostname) {
                    let origin = self.pending.remove(&hostname).flatten();
                    self.nodes.push(NodeEntry {
                        hostname: hostname.clone(),
                        node,
                    });
                    ctx.send(node, Payload::Lam(LamMsg::NodeAccepted));
                    ctx.trace("lam.node.accepted", hostname.clone());
                    if let Some(span) = self.grow_spans.remove(&hostname) {
                        ctx.close_span(span, "parsys.grow", "ok");
                    }
                    if let Some(o) = origin {
                        ctx.send(
                            o,
                            Payload::Lam(LamMsg::GrowResult {
                                host: hostname.clone(),
                                ok: true,
                            }),
                        );
                    }
                    self.grow_finished(ctx, &hostname);
                } else {
                    ctx.trace("lam.node.refused", hostname.clone());
                    ctx.send(
                        node,
                        Payload::Lam(LamMsg::NodeRefused {
                            reason: format!("host {hostname} not in boot set"),
                        }),
                    );
                }
            }
            Payload::Lam(LamMsg::NodeExiting { node }) => {
                if let Some(pos) = self.nodes.iter().position(|n| n.node == node) {
                    let entry = self.nodes.remove(pos);
                    ctx.trace("lam.node.gone", entry.hostname);
                }
            }
            Payload::Lam(LamMsg::RunWork { cpu_millis }) => {
                // Self-scheduling dispatch: fan work units to nodes
                // round-robin; with no nodes, run on the origin host.
                let cpu = if cpu_millis > 0 {
                    cpu_millis
                } else {
                    self.cfg.work_millis.max(1)
                };
                if self.nodes.is_empty() {
                    ctx.cpu_burst(Duration::from_millis(cpu));
                } else {
                    let target = self.nodes[self.rr % self.nodes.len()].node;
                    self.rr += 1;
                    ctx.send(target, Payload::Lam(LamMsg::RunWork { cpu_millis: cpu }));
                }
            }
            Payload::Lam(LamMsg::WorkDone { .. }) => {
                self.work_done += 1;
            }
            Payload::Ctl(CtlMsg::GrowHint { count }) => {
                // A self-scheduling MPI program asking for more nodes.
                for _ in 0..count {
                    self.begin_grow(ctx, "anylinux".to_string(), None);
                }
            }
            Payload::Ctl(CtlMsg::Stop) => {
                self.on_message(ctx, from, Payload::Lam(LamMsg::Halt));
            }
            _ => {}
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, rb_proto::RshError>,
    ) {
        let Some(host) = self.rsh_inflight.remove(&handle) else {
            return;
        };
        if !matches!(result, Ok(ExitStatus::Success)) {
            self.fail_grow(ctx, &host);
        }
    }

    fn on_cpu_done(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {
        // A work unit executed on the origin host itself.
        self.work_done += 1;
    }
}

/// A LAM node daemon on a remote machine.
pub struct LamNode {
    origin: ProcId,
    #[allow(dead_code)]
    session: SessionId,
    accepted: bool,
}

impl LamNode {
    pub fn new(origin: ProcId, session: SessionId) -> Self {
        LamNode {
            origin,
            session,
            accepted: false,
        }
    }
}

impl Behavior for LamNode {
    fn name(&self) -> &'static str {
        "lamd"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        let hostname = ctx.hostname().to_string();
        // LAM's node boot is slower than PVM's slave start.
        let startup = ctx.cost().lamd_startup;
        ctx.send_after(
            self.origin,
            Payload::Lam(LamMsg::NodeRegister { node: me, hostname }),
            startup,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        match msg {
            Payload::Lam(LamMsg::NodeAccepted) => {
                self.accepted = true;
                ctx.register_service(LAMD_SERVICE);
                ctx.detach();
                ctx.trace("lam.node.up", ctx.hostname());
            }
            Payload::Lam(LamMsg::NodeRefused { reason }) => {
                ctx.trace("lam.node.refused.exit", reason);
                ctx.exit(ExitStatus::Failure(1));
            }
            Payload::Lam(LamMsg::RunWork { cpu_millis }) => {
                ctx.cpu_burst(Duration::from_millis(cpu_millis));
            }
            Payload::Lam(LamMsg::NodeHalt) => {
                ctx.exit(ExitStatus::Success);
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let me = ctx.me();
        ctx.send(self.origin, Payload::Lam(LamMsg::WorkDone { node: me }));
    }

    fn on_signal(&mut self, ctx: &mut Ctx<'_>, sig: Signal) {
        match sig {
            Signal::Term | Signal::Int => {
                let me = ctx.me();
                ctx.send(self.origin, Payload::Lam(LamMsg::NodeExiting { node: me }));
                ctx.trace("lam.node.retreat", ctx.hostname());
                ctx.exit(ExitStatus::Success);
            }
            _ => {}
        }
    }
}

/// A scripted LAM console (the analogue of `lamgrow` et al.). Reuses the
/// shared [`ConsoleCmd`] vocabulary so the broker's module framework can
/// drive PVM and LAM identically.
pub struct LamConsole {
    script: Vec<ConsoleCmd>,
    idx: usize,
    origin: Option<ProcId>,
    waiting: Option<String>,
    results: Vec<(String, bool)>,
}

impl LamConsole {
    pub fn new(script: Vec<ConsoleCmd>) -> Self {
        LamConsole {
            script,
            idx: 0,
            origin: None,
            waiting: None,
            results: Vec::new(),
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let Some(origin) = self.origin else { return };
        loop {
            if self.waiting.is_some() {
                return;
            }
            let Some(cmd) = self.script.get(self.idx).cloned() else {
                ctx.exit(ExitStatus::Success);
                return;
            };
            self.idx += 1;
            match cmd {
                ConsoleCmd::Add(host) => {
                    self.waiting = Some(host.clone());
                    ctx.send(origin, Payload::Lam(LamMsg::GrowNode { host }));
                    return;
                }
                ConsoleCmd::Delete(host) => {
                    ctx.send(origin, Payload::Lam(LamMsg::ShrinkNode { host }));
                }
                ConsoleCmd::Halt => {
                    ctx.send(origin, Payload::Lam(LamMsg::Halt));
                    ctx.exit(ExitStatus::Success);
                    return;
                }
                ConsoleCmd::Spawn(n) => {
                    // `mpirun`-style: fan a work unit to each of n nodes.
                    for _ in 0..n {
                        ctx.send(origin, Payload::Lam(LamMsg::RunWork { cpu_millis: 0 }));
                    }
                }
                ConsoleCmd::Quit => {
                    ctx.exit(ExitStatus::Success);
                    return;
                }
            }
        }
    }
}

impl Behavior for LamConsole {
    fn name(&self) -> &'static str {
        "lam-console"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let startup = ctx.cost().lam_console_startup;
        ctx.set_timer(startup);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        match ctx.lookup_service(LAMD_SERVICE) {
            Some(origin) => {
                self.origin = Some(origin);
                self.step(ctx);
            }
            None => {
                ctx.trace("lam.console.no-lamd", ctx.hostname());
                ctx.exit(ExitStatus::Failure(1));
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        if let Payload::Lam(LamMsg::GrowResult { host, ok }) = msg {
            if self.waiting.as_deref() == Some(host.as_str()) {
                self.waiting = None;
                self.results.push((host.clone(), ok));
                ctx.trace("lam.console.grow-result", format_args!("{host} ok={ok}"));
                self.step(ctx);
            }
        }
    }
}
