//! `pmake` — a distributed parallel `make`.
//!
//! The paper lists "parallelizable tasks such as `make`" among the
//! programs the broker's **default behavior** serves: each recipe is an
//! ordinary remote command launched over `rsh`, so running the build under
//! ResourceBroker with a symbolic hostfile spreads independent targets
//! over machines chosen just in time — with zero changes to the build
//! description.
//!
//! The model is deliberately make-like: a DAG of rules, a goal target,
//! bounded parallelism (`-j`), failure aborts the build after in-flight
//! recipes drain, and cycles are detected up front.

use rb_proto::{CommandSpec, CtlMsg, ExitStatus, Payload, ProcId, RshHandle, Signal};
use rb_simcore::{FxHashMap, FxHashSet};
use rb_simnet::{Behavior, Ctx};
use std::collections::VecDeque;

/// One build rule.
#[derive(Debug, Clone)]
pub struct MakeRule {
    pub target: String,
    pub deps: Vec<String>,
    /// CPU cost of the recipe (a compile step, say).
    pub cpu_millis: u64,
    /// Model a recipe whose command exits non-zero.
    pub fails: bool,
}

impl MakeRule {
    pub fn new(target: impl Into<String>, deps: &[&str], cpu_millis: u64) -> Self {
        MakeRule {
            target: target.into(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            cpu_millis,
            fails: false,
        }
    }

    pub fn failing(mut self) -> Self {
        self.fails = true;
        self
    }
}

/// Configuration for a build.
#[derive(Debug, Clone)]
pub struct PmakeConfig {
    pub rules: Vec<MakeRule>,
    pub goal: String,
    /// Maximum concurrent recipes (`make -j`).
    pub jobs: u32,
    /// Hosts to launch recipes on, cycled (symbolic under the broker).
    pub hostfile: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TargetState {
    Waiting,
    Running,
    Built,
    Failed,
}

/// The distributed make driver (the job's root process).
pub struct Pmake {
    cfg: PmakeConfig,
    states: FxHashMap<String, TargetState>,
    /// rsh handle -> target being built.
    running: FxHashMap<RshHandle, String>,
    /// Targets whose dependencies are satisfied, FIFO.
    ready: VecDeque<String>,
    hostfile_cursor: usize,
    /// Build is aborting after a failure; drain in-flight recipes.
    aborting: bool,
    built_count: u64,
}

impl Pmake {
    pub fn new(cfg: PmakeConfig) -> Self {
        Pmake {
            cfg,
            states: FxHashMap::default(),
            running: FxHashMap::default(),
            ready: VecDeque::new(),
            hostfile_cursor: 0,
            aborting: false,
            built_count: 0,
        }
    }

    fn rule(&self, target: &str) -> Option<&MakeRule> {
        self.cfg.rules.iter().find(|r| r.target == target)
    }

    /// The subgraph reachable from the goal, in no particular order.
    /// Returns an error message on a missing rule or a dependency cycle.
    fn needed_targets(&self) -> Result<Vec<String>, String> {
        let mut needed = Vec::new();
        let mut seen = FxHashSet::default();
        let mut stack = vec![self.cfg.goal.clone()];
        while let Some(t) = stack.pop() {
            if !seen.insert(t.clone()) {
                continue;
            }
            let rule = self
                .rule(&t)
                .ok_or_else(|| format!("no rule to make target '{t}'"))?;
            for d in &rule.deps {
                stack.push(d.clone());
            }
            needed.push(t);
        }
        // Kahn's algorithm detects cycles within the needed subgraph.
        let needed_set: FxHashSet<&String> = needed.iter().collect();
        let mut indegree: FxHashMap<&String, usize> = needed
            .iter()
            .map(|t| (t, self.rule(t).expect("validated").deps.len()))
            .collect();
        let mut frontier: VecDeque<&String> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut visited = 0;
        while let Some(t) = frontier.pop_front() {
            visited += 1;
            for r in &self.cfg.rules {
                if needed_set.contains(&r.target) && r.deps.iter().any(|d| d == t) {
                    let e = indegree.get_mut(&r.target).expect("needed");
                    *e -= 1;
                    if *e == 0 {
                        frontier.push_back(&r.target);
                    }
                }
            }
        }
        if visited != needed.len() {
            return Err("dependency cycle detected".into());
        }
        Ok(needed)
    }

    fn deps_built(&self, target: &str) -> bool {
        self.rule(target)
            .map(|r| {
                r.deps
                    .iter()
                    .all(|d| self.states.get(d) == Some(&TargetState::Built))
            })
            .unwrap_or(false)
    }

    /// Move newly satisfiable targets into the ready queue.
    fn refresh_ready(&mut self) {
        let newly: Vec<String> = self
            .states
            .iter()
            .filter(|(_, &s)| s == TargetState::Waiting)
            .map(|(t, _)| t.clone())
            .filter(|t| self.deps_built(t))
            .collect();
        for t in newly {
            self.states.insert(t.clone(), TargetState::Running);
            self.ready.push_back(t);
        }
    }

    /// Launch recipes up to the parallelism bound.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.aborting {
            if self.running.is_empty() {
                ctx.trace("pmake.fail", self.cfg.goal.clone());
                ctx.exit(ExitStatus::Failure(2));
            }
            return;
        }
        while (self.running.len() as u32) < self.cfg.jobs.max(1) {
            let Some(target) = self.ready.pop_front() else {
                break;
            };
            let rule = self.rule(&target).expect("validated").clone();
            let host = self.cfg.hostfile[self.hostfile_cursor % self.cfg.hostfile.len()].clone();
            self.hostfile_cursor += 1;
            let cmd = if rule.fails {
                CommandSpec::Custom {
                    name: "false".into(),
                    arg: 0,
                }
            } else {
                CommandSpec::Loop {
                    cpu_millis: rule.cpu_millis.max(1),
                }
            };
            ctx.trace("pmake.launch", format_args!("{target} on {host}"));
            let handle = ctx.rsh(&host, cmd);
            self.running.insert(handle, target);
        }
        if self.running.is_empty() && self.ready.is_empty() {
            // Nothing runs and nothing is ready: the goal must be built.
            if self.states.get(&self.cfg.goal) == Some(&TargetState::Built) {
                ctx.trace("pmake.done", format_args!("{} targets", self.built_count));
                ctx.exit(ExitStatus::Success);
            }
        }
    }
}

impl Behavior for Pmake {
    fn name(&self) -> &'static str {
        "pmake"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.hostfile.is_empty() {
            ctx.trace("pmake.error", "empty hostfile");
            ctx.exit(ExitStatus::Failure(2));
            return;
        }
        match self.needed_targets() {
            Ok(needed) => {
                for t in needed {
                    self.states.insert(t, TargetState::Waiting);
                }
                ctx.trace("pmake.start", format_args!("{} targets", self.states.len()));
                self.refresh_ready();
                self.pump(ctx);
            }
            Err(err) => {
                ctx.trace("pmake.error", err);
                ctx.exit(ExitStatus::Failure(2));
            }
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, rb_proto::RshError>,
    ) {
        let Some(target) = self.running.remove(&handle) else {
            return;
        };
        match result {
            Ok(ExitStatus::Success) => {
                self.states.insert(target.clone(), TargetState::Built);
                self.built_count += 1;
                ctx.trace("pmake.built", target);
                self.refresh_ready();
            }
            other => {
                self.states.insert(target.clone(), TargetState::Failed);
                ctx.trace("pmake.recipe-failed", format_args!("{target}: {other:?}"));
                self.aborting = true;
            }
        }
        self.pump(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        if let Payload::Ctl(CtlMsg::Stop) = msg {
            self.aborting = true;
            self.pump(ctx);
        }
    }

    fn on_signal(&mut self, ctx: &mut Ctx<'_>, sig: Signal) {
        if matches!(sig, Signal::Term | Signal::Int) {
            self.aborting = true;
            if self.running.is_empty() {
                ctx.exit(ExitStatus::Killed(sig));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rules: Vec<MakeRule>, goal: &str) -> PmakeConfig {
        PmakeConfig {
            rules,
            goal: goal.into(),
            jobs: 4,
            hostfile: vec!["n01".into()],
        }
    }

    fn pmake(rules: Vec<MakeRule>, goal: &str) -> Pmake {
        Pmake::new(cfg(rules, goal))
    }

    #[test]
    fn needed_targets_follows_the_goal_subgraph() {
        let p = pmake(
            vec![
                MakeRule::new("a", &[], 1),
                MakeRule::new("b", &["a"], 1),
                MakeRule::new("unrelated", &[], 1),
            ],
            "b",
        );
        let mut needed = p.needed_targets().unwrap();
        needed.sort();
        assert_eq!(needed, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn missing_rule_is_an_error() {
        let p = pmake(vec![MakeRule::new("a", &["ghost"], 1)], "a");
        let err = p.needed_targets().unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn cycle_is_an_error() {
        let p = pmake(
            vec![MakeRule::new("a", &["b"], 1), MakeRule::new("b", &["a"], 1)],
            "a",
        );
        let err = p.needed_targets().unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let p = pmake(vec![MakeRule::new("a", &["a"], 1)], "a");
        assert!(p.needed_targets().is_err());
    }
}
