//! A behavioral model of Calypso: fault-tolerant master/worker parallel
//! computing with eager scheduling.
//!
//! The two properties that make the broker's **default (redirect)** path
//! work for Calypso are modeled directly:
//!
//! * workers join **anonymously** — the master accepts a registration from
//!   any machine, so redirecting an `rsh anylinux` to a machine chosen at
//!   runtime goes unnoticed;
//! * worker **removal is tolerated by the runtime layer** (not by user
//!   code): an in-flight task whose worker leaves or dies is simply
//!   re-executed elsewhere, so the broker can reclaim machines at any time.

use rb_proto::{
    CalypsoMsg, CommandSpec, CtlMsg, ExitStatus, Payload, ProcId, RshHandle, Signal, TimerToken,
};
use rb_simcore::Duration;
use rb_simcore::FxHashMap;
use rb_simnet::{Behavior, Ctx};
use std::collections::VecDeque;

/// Service name the master registers.
pub const CALYPSO_SERVICE: &str = "calypso";

/// The master's supply of work.
#[derive(Debug, Clone)]
pub enum TaskBag {
    /// A fixed set of tasks; the job completes when all have results.
    Finite(Vec<u64>),
    /// An endless supply (long-running adaptive computation).
    Endless { cpu_millis: u64 },
}

/// Configuration for a Calypso master.
#[derive(Debug, Clone)]
pub struct CalypsoConfig {
    pub tasks: TaskBag,
    /// How many workers the job tries to hold (its standing desire).
    pub desired_workers: u32,
    /// The job's `.hosts` file: host arguments used when growing, cycled
    /// through in order. Under the broker this is typically a single
    /// symbolic entry such as `anylinux`.
    pub hostfile: Vec<String>,
    /// Re-execute a task if no result arrives within this budget (eager
    /// scheduling's fault-tolerance backstop).
    pub task_timeout: Option<Duration>,
}

impl Default for CalypsoConfig {
    fn default() -> Self {
        CalypsoConfig {
            tasks: TaskBag::Endless { cpu_millis: 1_000 },
            desired_workers: 1,
            hostfile: vec!["anylinux".to_string()],
            task_timeout: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Task {
    id: u64,
    cpu_millis: u64,
}

#[derive(Debug)]
struct WorkerInfo {
    hostname: String,
    current: Option<Task>,
    timeout: Option<TimerToken>,
}

/// The Calypso master process (the job's root).
pub struct CalypsoMaster {
    cfg: CalypsoConfig,
    queue: VecDeque<Task>,
    workers: FxHashMap<ProcId, WorkerInfo>,
    idle: Vec<ProcId>,
    timeout_map: FxHashMap<TimerToken, (ProcId, u64)>,
    grow_inflight: FxHashMap<RshHandle, rb_simcore::SpanId>,
    hostfile_cursor: usize,
    next_task: u64,
    results: u64,
    total_finite: Option<u64>,
    stopping: bool,
}

impl CalypsoMaster {
    pub fn new(cfg: CalypsoConfig) -> Self {
        let mut queue = VecDeque::new();
        let mut next_task = 0;
        let total_finite = match &cfg.tasks {
            TaskBag::Finite(list) => {
                for &cpu in list {
                    queue.push_back(Task {
                        id: next_task,
                        cpu_millis: cpu,
                    });
                    next_task += 1;
                }
                Some(list.len() as u64)
            }
            TaskBag::Endless { .. } => None,
        };
        CalypsoMaster {
            cfg,
            queue,
            workers: FxHashMap::default(),
            idle: Vec::new(),
            timeout_map: FxHashMap::default(),
            grow_inflight: FxHashMap::default(),
            hostfile_cursor: 0,
            next_task,
            results: 0,
            total_finite,
            stopping: false,
        }
    }

    /// Number of results collected so far.
    pub fn results(&self) -> u64 {
        self.results
    }

    fn next_task(&mut self) -> Option<Task> {
        if let Some(t) = self.queue.pop_front() {
            return Some(t);
        }
        match self.cfg.tasks {
            TaskBag::Endless { cpu_millis } => {
                let t = Task {
                    id: self.next_task,
                    cpu_millis,
                };
                self.next_task += 1;
                Some(t)
            }
            TaskBag::Finite(_) => None,
        }
    }

    fn assign(&mut self, ctx: &mut Ctx<'_>, worker: ProcId) {
        if self.stopping {
            return;
        }
        let Some(task) = self.next_task() else {
            if !self.idle.contains(&worker) {
                self.idle.push(worker);
            }
            ctx.send(worker, Payload::Calypso(CalypsoMsg::Idle));
            return;
        };
        let timeout = self.cfg.task_timeout.map(|d| {
            let token = ctx.set_timer(d);
            self.timeout_map.insert(token, (worker, task.id));
            token
        });
        if let Some(info) = self.workers.get_mut(&worker) {
            info.current = Some(task);
            info.timeout = timeout;
        }
        ctx.send(
            worker,
            Payload::Calypso(CalypsoMsg::TaskAssign {
                task: task.id,
                cpu_millis: task.cpu_millis,
            }),
        );
    }

    /// Put a task back in the bag and hand it to an idle worker if any.
    fn requeue(&mut self, ctx: &mut Ctx<'_>, task: Task) {
        self.queue.push_front(task);
        if let Some(w) = self.idle.pop() {
            self.assign(ctx, w);
        }
    }

    fn drop_worker(&mut self, ctx: &mut Ctx<'_>, worker: ProcId) {
        self.idle.retain(|&w| w != worker);
        if let Some(info) = self.workers.remove(&worker) {
            if let Some(token) = info.timeout {
                ctx.cancel_timer(token);
                self.timeout_map.remove(&token);
            }
            if let Some(task) = info.current {
                ctx.trace("calypso.task.requeue", format_args!("task {}", task.id));
                self.requeue(ctx, task);
            }
            ctx.trace("calypso.worker.gone", info.hostname);
        }
    }

    fn try_grow(&mut self, ctx: &mut Ctx<'_>, count: u32) {
        if self.cfg.hostfile.is_empty() || self.stopping {
            return;
        }
        for _ in 0..count {
            let host = self.cfg.hostfile[self.hostfile_cursor % self.cfg.hostfile.len()].clone();
            self.hostfile_cursor += 1;
            let me = ctx.me();
            ctx.trace("calypso.grow.attempt", host.clone());
            let span = crate::open_grow_span(ctx, "calypso", &host);
            let handle = ctx.rsh(&host, CommandSpec::CalypsoWorker { master: me });
            self.grow_inflight.insert(handle, span);
        }
    }

    fn maybe_complete(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(total) = self.total_finite {
            if self.results >= total && !self.stopping {
                self.finish(ctx);
            }
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        self.stopping = true;
        // Grow attempts still in flight will never be used; close their
        // spans so the job's trace quiesces clean.
        let mut inflight: Vec<rb_simcore::SpanId> = std::mem::take(&mut self.grow_inflight)
            .into_values()
            .collect();
        inflight.sort();
        for span in inflight {
            ctx.close_span(span, "parsys.grow", "stopping");
        }
        let mut workers: Vec<ProcId> = self.workers.keys().copied().collect();
        workers.sort();
        for w in workers {
            ctx.send(w, Payload::Calypso(CalypsoMsg::JobComplete));
        }
        ctx.trace("calypso.complete", format_args!("results={}", self.results));
        // Exit after notifications flush.
        ctx.set_timer(Duration::from_millis(20));
    }
}

impl Behavior for CalypsoMaster {
    fn name(&self) -> &'static str {
        "calypso-master"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.register_service(CALYPSO_SERVICE);
        ctx.trace("calypso.master.up", ctx.hostname());
        let want = self.cfg.desired_workers;
        self.try_grow(ctx, want);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.stopping {
            ctx.exit(ExitStatus::Success);
            return;
        }
        // Task timeout: eager re-execution.
        if let Some((worker, task_id)) = self.timeout_map.remove(&token) {
            let still_current = self
                .workers
                .get(&worker)
                .and_then(|i| i.current)
                .map(|t| t.id == task_id)
                .unwrap_or(false);
            if still_current {
                ctx.trace(
                    "calypso.task.timeout",
                    format_args!("task {task_id} on {worker}"),
                );
                self.drop_worker(ctx, worker);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Payload) {
        match msg {
            Payload::Calypso(CalypsoMsg::WorkerRegister { worker, hostname }) => {
                // Anonymous join: always accepted.
                self.workers.insert(
                    worker,
                    WorkerInfo {
                        hostname: hostname.clone(),
                        current: None,
                        timeout: None,
                    },
                );
                ctx.trace("calypso.worker.joined", hostname);
                ctx.send(worker, Payload::Calypso(CalypsoMsg::WorkerWelcome));
                self.assign(ctx, worker);
            }
            Payload::Calypso(CalypsoMsg::TaskResult { worker, task }) => {
                let valid = self
                    .workers
                    .get(&worker)
                    .and_then(|i| i.current)
                    .map(|t| t.id == task)
                    .unwrap_or(false);
                if valid {
                    if let Some(info) = self.workers.get_mut(&worker) {
                        info.current = None;
                        if let Some(token) = info.timeout.take() {
                            ctx.cancel_timer(token);
                            self.timeout_map.remove(&token);
                        }
                    }
                    self.results += 1;
                    self.maybe_complete(ctx);
                    if !self.stopping {
                        self.assign(ctx, worker);
                    }
                }
            }
            Payload::Calypso(CalypsoMsg::WorkerLeaving { worker }) => {
                self.drop_worker(ctx, worker);
            }
            Payload::Ctl(CtlMsg::GrowHint { count }) => {
                self.try_grow(ctx, count);
            }
            Payload::Ctl(CtlMsg::ShrinkHint { count }) => {
                for _ in 0..count {
                    if let Some(w) = self
                        .idle
                        .pop()
                        .or_else(|| self.workers.keys().min().copied())
                    {
                        let host = self
                            .workers
                            .get(&w)
                            .map(|i| i.hostname.clone())
                            .unwrap_or_default();
                        crate::shrink_span(ctx, "calypso", &host);
                        ctx.send(w, Payload::Calypso(CalypsoMsg::JobComplete));
                        self.drop_worker(ctx, w);
                    }
                }
            }
            Payload::Ctl(CtlMsg::Stop) => {
                let _ = from;
                self.finish(ctx);
            }
            _ => {}
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, rb_proto::RshError>,
    ) {
        if let Some(span) = self.grow_inflight.remove(&handle) {
            if matches!(result, Ok(ExitStatus::Success)) {
                ctx.close_span(span, "parsys.grow", "ok");
            } else {
                ctx.trace("calypso.grow.failed", format_args!("{result:?}"));
                ctx.close_span(span, "parsys.grow", "failed");
            }
        }
    }

    fn on_signal(&mut self, ctx: &mut Ctx<'_>, sig: Signal) {
        if matches!(sig, Signal::Term | Signal::Int) {
            self.finish(ctx);
        }
    }
}

/// A Calypso worker: joins anonymously, computes assigned tasks, retreats
/// gracefully when evicted.
pub struct CalypsoWorker {
    master: ProcId,
    current_task: Option<u64>,
    leaving: bool,
}

impl CalypsoWorker {
    pub fn new(master: ProcId) -> Self {
        CalypsoWorker {
            master,
            current_task: None,
            leaving: false,
        }
    }
}

impl Behavior for CalypsoWorker {
    fn name(&self) -> &'static str {
        "calypso-worker"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        let hostname = ctx.hostname().to_string();
        let startup = ctx.cost().calypso_worker_startup;
        ctx.send_after(
            self.master,
            Payload::Calypso(CalypsoMsg::WorkerRegister {
                worker: me,
                hostname,
            }),
            startup,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        if self.leaving {
            return;
        }
        match msg {
            Payload::Calypso(CalypsoMsg::WorkerWelcome) => {
                ctx.detach();
                ctx.trace("calypso.worker.up", ctx.hostname());
            }
            Payload::Calypso(CalypsoMsg::TaskAssign { task, cpu_millis }) => {
                self.current_task = Some(task);
                ctx.cpu_burst(Duration::from_millis(cpu_millis));
            }
            Payload::Calypso(CalypsoMsg::Idle) => {}
            Payload::Calypso(CalypsoMsg::JobComplete) => {
                ctx.exit(ExitStatus::Success);
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if let Some(task) = self.current_task.take() {
            let me = ctx.me();
            ctx.send(
                self.master,
                Payload::Calypso(CalypsoMsg::TaskResult { worker: me, task }),
            );
        }
    }

    fn on_signal(&mut self, ctx: &mut Ctx<'_>, sig: Signal) {
        match sig {
            Signal::Term | Signal::Int => {
                if self.leaving {
                    return;
                }
                self.leaving = true;
                let me = ctx.me();
                ctx.send(
                    self.master,
                    Payload::Calypso(CalypsoMsg::WorkerLeaving { worker: me }),
                );
                ctx.trace("calypso.worker.retreat", ctx.hostname());
                // Deregistration and state flush take a moment; the
                // sub-appl's grace period exists precisely for this.
                let retreat = ctx.cost().graceful_retreat;
                ctx.set_timer(retreat);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        if self.leaving {
            ctx.exit(ExitStatus::Success);
        }
    }
}
