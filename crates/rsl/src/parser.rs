//! Recursive-descent parser: token stream → [`Request`].

use crate::ast::{Clause, Request, Value};
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    Lex(LexError),
    /// Unexpected token (or end of input) with a description.
    Unexpected {
        at: usize,
        expected: String,
    },
    /// Empty request.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => e.fmt(f),
            ParseError::Unexpected { at, expected } => {
                write!(f, "parse error at token {at}: expected {expected}")
            }
            ParseError::Empty => f.write_str("empty RSL request"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_clause(&mut self) -> Result<Clause, ParseError> {
        match self.bump() {
            Some(Token::LParen) => {}
            _ => {
                return Err(ParseError::Unexpected {
                    at: self.pos.saturating_sub(1),
                    expected: "'('".into(),
                })
            }
        }
        let attr = match self.bump() {
            Some(Token::Ident(s)) => s,
            _ => {
                return Err(ParseError::Unexpected {
                    at: self.pos.saturating_sub(1),
                    expected: "attribute name".into(),
                })
            }
        };
        let op = match self.bump() {
            Some(Token::Op(o)) => o,
            _ => {
                return Err(ParseError::Unexpected {
                    at: self.pos.saturating_sub(1),
                    expected: "relational operator".into(),
                })
            }
        };
        let value = match self.bump() {
            Some(Token::Str(s)) => Value::Str(s),
            Some(Token::Int(i)) => Value::Int(i),
            // Bare words are accepted as string values (Globus allows
            // unquoted literals): `(module=pvm)`.
            Some(Token::Ident(s)) => Value::Str(s),
            _ => {
                return Err(ParseError::Unexpected {
                    at: self.pos.saturating_sub(1),
                    expected: "value".into(),
                })
            }
        };
        match self.bump() {
            Some(Token::RParen) => {}
            _ => {
                return Err(ParseError::Unexpected {
                    at: self.pos.saturating_sub(1),
                    expected: "')'".into(),
                })
            }
        }
        Ok(Clause { attr, op, value })
    }
}

/// Parse an RSL request string such as
/// `+(count>=4)(arch="i686")(module="pvm")`.
///
/// The leading `+` (multi-request marker) and `&` (conjunction marker) are
/// both accepted and equivalent here: the prototype treats every request as
/// a single conjunction.
pub fn parse(input: &str) -> Result<Request, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    // Optional leading + / &.
    while matches!(p.peek(), Some(Token::Plus) | Some(Token::Amp)) {
        p.bump();
    }
    let mut clauses = Vec::new();
    while p.peek().is_some() {
        clauses.push(p.expect_clause()?);
    }
    if clauses.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(Request { clauses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::RelOp;

    #[test]
    fn parses_the_paper_example() {
        let r = parse(r#"+(count>=4)(arch="i686")(module="pvm")"#).unwrap();
        assert_eq!(r.clauses.len(), 3);
        assert_eq!(r.clauses[0], Clause::new("count", RelOp::Ge, Value::Int(4)));
        assert_eq!(r.str_eq("arch"), Some("i686"));
        assert_eq!(r.str_eq("module"), Some("pvm"));
    }

    #[test]
    fn plus_and_amp_prefixes_are_optional() {
        let a = parse(r#"+(x=1)"#).unwrap();
        let b = parse(r#"&(x=1)"#).unwrap();
        let c = parse(r#"(x=1)"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn bare_word_values() {
        let r = parse("(module=pvm)").unwrap();
        assert_eq!(r.str_eq("module"), Some("pvm"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse(""), Err(ParseError::Empty)));
        assert!(matches!(parse("+"), Err(ParseError::Empty)));
        assert!(parse("(x=1").is_err());
        assert!(parse("(=1)").is_err());
        assert!(parse("(x 1)").is_err());
        assert!(parse("x=1").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let src = r#"+(count>=4)(arch="i686")(adaptive=1)(module="pvm")(start_script="run.sh")"#;
        let r = parse(src).unwrap();
        let shown = r.to_string();
        let r2 = parse(&shown).unwrap();
        assert_eq!(r, r2);
    }
}

#[cfg(test)]
mod randomized {
    //! Seeded randomized roundtrip testing (the offline stand-in for the
    //! earlier proptest suite): any structurally valid request survives a
    //! display→parse roundtrip.

    use super::*;
    use crate::lexer::RelOp;
    use rb_simcore::SimRng;

    const OPS: [RelOp; 6] = [
        RelOp::Eq,
        RelOp::Ne,
        RelOp::Ge,
        RelOp::Le,
        RelOp::Gt,
        RelOp::Lt,
    ];

    fn rand_ident(rng: &mut SimRng, tail_max: usize) -> String {
        let head = b"abcdefghijklmnopqrstuvwxyz";
        let tail = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let mut s = String::new();
        s.push(head[rng.index(head.len())] as char);
        for _ in 0..rng.index(tail_max + 1) {
            s.push(tail[rng.index(tail.len())] as char);
        }
        s
    }

    fn rand_value(rng: &mut SimRng) -> Value {
        if rng.chance(0.5) {
            Value::Int(rng.uniform_u64(0, 2_000) as i64 - 1_000)
        } else {
            let chars = b"abcdefghijklmnopqrstuvwxyz0123456789_.-";
            let mut s = String::new();
            s.push(b"abcdefghijklmnopqrstuvwxyz"[rng.index(26)] as char);
            for _ in 0..rng.index(13) {
                s.push(chars[rng.index(chars.len())] as char);
            }
            Value::Str(s)
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let mut rng = SimRng::seeded(0x5151);
        for _ in 0..256 {
            let clauses = (0..rng.uniform_u64(1, 8))
                .map(|_| {
                    Clause::new(
                        rand_ident(&mut rng, 10),
                        OPS[rng.index(OPS.len())],
                        rand_value(&mut rng),
                    )
                })
                .collect();
            let r = Request { clauses };
            let shown = r.to_string();
            let parsed = parse(&shown).expect("roundtrip parse");
            assert_eq!(parsed, r, "roundtrip of {shown}");
        }
    }
}
