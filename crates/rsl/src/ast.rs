//! Abstract syntax of RSL requests.

use crate::lexer::RelOp;
use std::fmt;

/// A clause value: string or integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    Str(String),
    Int(i64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "\"{}\"", s.replace('"', "\\\"")),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// One `(attribute op value)` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    pub attr: String,
    pub op: RelOp,
    pub value: Value,
}

impl Clause {
    pub fn new(attr: impl Into<String>, op: RelOp, value: Value) -> Self {
        Clause {
            attr: attr.into(),
            op,
            value,
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{}{})", self.attr, self.op, self.value)
    }
}

/// A parsed request: a conjunction of clauses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Request {
    pub clauses: Vec<Clause>,
}

impl Request {
    /// All clauses naming `attr`.
    pub fn clauses_for<'a>(&'a self, attr: &'a str) -> impl Iterator<Item = &'a Clause> {
        self.clauses.iter().filter(move |c| c.attr == attr)
    }

    /// The value of the first `attr = value` clause, if any.
    pub fn first_eq(&self, attr: &str) -> Option<&Value> {
        self.clauses
            .iter()
            .find(|c| c.attr == attr && c.op == RelOp::Eq)
            .map(|c| &c.value)
    }

    /// First `attr = "string"` clause value.
    pub fn str_eq(&self, attr: &str) -> Option<&str> {
        match self.first_eq(attr) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+")?;
        for c in &self.clauses {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let c = Clause::new("arch", RelOp::Eq, Value::Str("i686".into()));
        assert_eq!(c.to_string(), r#"(arch="i686")"#);
        let c2 = Clause::new("count", RelOp::Ge, Value::Int(4));
        assert_eq!(c2.to_string(), "(count>=4)");
        let r = Request {
            clauses: vec![c, c2],
        };
        assert_eq!(r.to_string(), r#"+(arch="i686")(count>=4)"#);
    }

    #[test]
    fn accessors() {
        let r = Request {
            clauses: vec![
                Clause::new("module", RelOp::Eq, Value::Str("pvm".into())),
                Clause::new("count", RelOp::Ge, Value::Int(2)),
            ],
        };
        assert_eq!(r.str_eq("module"), Some("pvm"));
        assert_eq!(r.str_eq("count"), None);
        assert_eq!(r.clauses_for("count").count(), 1);
        assert!(r.first_eq("missing").is_none());
    }
}
