//! # rb-rsl — the Resource Specification Language
//!
//! ResourceBroker adopted the Resource Specification Language of Globus and
//! extended it to support adaptive programs: `adaptive`, `start_script`,
//! and `module` parameters describe adaptive jobs. A request such as
//!
//! ```text
//! +(count>=4)(arch="i686")(module="pvm")
//! ```
//!
//! asks to execute a PVM program on at least four i686 Linux machines,
//! using the external `pvm_*` modules for grow/shrink/halt.
//!
//! This crate provides the lexer, parser, AST, and two evaluators:
//! [`job_spec`] extracts job-level requirements, and [`machine_matches`]
//! checks the remaining clauses against a machine's attributes.
//!
//! ```
//! use rb_rsl::{parse, job_spec};
//! let req = parse(r#"+(count>=4)(arch="i686")(module="pvm")"#).unwrap();
//! let spec = job_spec(&req).unwrap();
//! assert_eq!(spec.min_count, 4);
//! assert_eq!(spec.module.as_deref(), Some("pvm"));
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{Clause, Request, Value};
pub use eval::{clause_matches, job_spec, machine_matches, JobSpec, SpecError};
pub use lexer::{lex, LexError, RelOp, Token};
pub use parser::{parse, ParseError};
