//! Evaluation of RSL requests: extracting job-level requirements (the
//! paper's `adaptive`, `module`, `start_script` extensions plus `count`)
//! and matching machine-level constraints against machine attributes.

use crate::ast::{Clause, Request, Value};
use crate::lexer::RelOp;
use rb_proto::{MachineAttrs, Ownership};
use std::fmt;

// Job-level attributes (`count`, `adaptive`, `module`, `start_script`,
// `executable`) are matched by name in `job_spec` below; everything else
// is a per-machine constraint.

/// A job's requirements extracted from its RSL request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Minimum machines the job wants (`count>=k`, `count=k`; default 1).
    pub min_count: u32,
    /// Maximum machines (`count<=k`, `count=k`), if bounded.
    pub max_count: Option<u32>,
    /// `(adaptive=1)` — the job can grow/shrink at runtime.
    pub adaptive: bool,
    /// `(module="pvm")` — external-module triple to use for grow/shrink/halt.
    pub module: Option<String>,
    /// `(start_script="...")` — script run to launch the job.
    pub start_script: Option<String>,
    /// Remaining clauses, interpreted as per-machine constraints.
    pub constraints: Vec<Clause>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            min_count: 1,
            max_count: None,
            adaptive: false,
            module: None,
            start_script: None,
            constraints: Vec::new(),
        }
    }
}

/// Errors in job-level attribute usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// e.g. `(count>="four")`.
    TypeMismatch { attr: String },
    /// e.g. `(count<0)` or contradictory bounds.
    BadCount { detail: String },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::TypeMismatch { attr } => write!(f, "attribute '{attr}' has wrong type"),
            SpecError::BadCount { detail } => write!(f, "bad count constraint: {detail}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Extract the job-level spec from a parsed request.
pub fn job_spec(req: &Request) -> Result<JobSpec, SpecError> {
    let mut spec = JobSpec::default();
    let mut explicit_min = false;
    for c in &req.clauses {
        match c.attr.as_str() {
            "count" => {
                let Value::Int(v) = c.value else {
                    return Err(SpecError::TypeMismatch {
                        attr: "count".into(),
                    });
                };
                if v < 0 {
                    return Err(SpecError::BadCount {
                        detail: format!("count {v} < 0"),
                    });
                }
                let v = v as u32;
                match c.op {
                    RelOp::Eq => {
                        spec.min_count = v;
                        spec.max_count = Some(v);
                        explicit_min = true;
                    }
                    RelOp::Ge => {
                        spec.min_count = spec.min_count.max(v);
                        explicit_min = true;
                    }
                    RelOp::Gt => {
                        spec.min_count = spec.min_count.max(v + 1);
                        explicit_min = true;
                    }
                    RelOp::Le => {
                        spec.max_count = Some(spec.max_count.map_or(v, |m| m.min(v)));
                    }
                    RelOp::Lt => {
                        if v == 0 {
                            return Err(SpecError::BadCount {
                                detail: "count<0 impossible".into(),
                            });
                        }
                        spec.max_count = Some(spec.max_count.map_or(v - 1, |m| m.min(v - 1)));
                    }
                    RelOp::Ne => {
                        return Err(SpecError::BadCount {
                            detail: "count!= not supported".into(),
                        });
                    }
                }
            }
            "adaptive" => match &c.value {
                Value::Int(v) => spec.adaptive = *v != 0,
                Value::Str(s) => spec.adaptive = s == "1" || s == "true" || s == "yes",
            },
            "module" => match &c.value {
                Value::Str(s) => spec.module = Some(s.clone()),
                Value::Int(_) => {
                    return Err(SpecError::TypeMismatch {
                        attr: "module".into(),
                    })
                }
            },
            "start_script" => match &c.value {
                Value::Str(s) => spec.start_script = Some(s.clone()),
                Value::Int(_) => {
                    return Err(SpecError::TypeMismatch {
                        attr: "start_script".into(),
                    })
                }
            },
            "executable" => { /* recorded but uninterpreted by the prototype */ }
            _ => spec.constraints.push(c.clone()),
        }
    }
    if let Some(max) = spec.max_count {
        if explicit_min && max < spec.min_count {
            return Err(SpecError::BadCount {
                detail: format!("max {max} < min {}", spec.min_count),
            });
        }
    }
    Ok(spec)
}

fn cmp_i64(lhs: i64, op: RelOp, rhs: i64) -> bool {
    match op {
        RelOp::Eq => lhs == rhs,
        RelOp::Ne => lhs != rhs,
        RelOp::Ge => lhs >= rhs,
        RelOp::Le => lhs <= rhs,
        RelOp::Gt => lhs > rhs,
        RelOp::Lt => lhs < rhs,
    }
}

fn cmp_str(lhs: &str, op: RelOp, rhs: &str) -> bool {
    match op {
        RelOp::Eq => lhs == rhs,
        RelOp::Ne => lhs != rhs,
        RelOp::Ge => lhs >= rhs,
        RelOp::Le => lhs <= rhs,
        RelOp::Gt => lhs > rhs,
        RelOp::Lt => lhs < rhs,
    }
}

/// Does one clause hold for a machine? Unknown attributes never match
/// (conservative: a constraint the broker cannot check is not satisfied).
pub fn clause_matches(clause: &Clause, attrs: &MachineAttrs) -> bool {
    match clause.attr.as_str() {
        "arch" => match &clause.value {
            Value::Str(s) => cmp_str(attrs.arch.as_str(), clause.op, s),
            Value::Int(_) => false,
        },
        "os" => match &clause.value {
            Value::Str(s) => cmp_str(attrs.os.as_str(), clause.op, s),
            Value::Int(_) => false,
        },
        "hostname" => match &clause.value {
            Value::Str(s) => cmp_str(&attrs.hostname, clause.op, s),
            Value::Int(_) => false,
        },
        // Speed is compared in integer percent of the baseline machine.
        "speed" => match &clause.value {
            Value::Int(v) => cmp_i64((attrs.speed * 100.0).round() as i64, clause.op, *v),
            Value::Str(_) => false,
        },
        "owner" => match (&clause.value, &attrs.ownership) {
            (Value::Str(s), Ownership::Private { owner }) => cmp_str(owner, clause.op, s),
            (Value::Str(s), Ownership::Public) => cmp_str("public", clause.op, s),
            _ => false,
        },
        "private" => match &clause.value {
            Value::Int(v) => cmp_i64(attrs.ownership.is_private() as i64, clause.op, *v),
            Value::Str(_) => false,
        },
        _ => false,
    }
}

/// Does a machine satisfy *all* constraints?
pub fn machine_matches(constraints: &[Clause], attrs: &MachineAttrs) -> bool {
    constraints.iter().all(|c| clause_matches(c, attrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use rb_proto::{Arch, Os};

    fn spec_of(src: &str) -> JobSpec {
        job_spec(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn paper_example_spec() {
        let s = spec_of(r#"+(count>=4)(arch="i686")(module="pvm")"#);
        assert_eq!(s.min_count, 4);
        assert_eq!(s.max_count, None);
        assert_eq!(s.module.as_deref(), Some("pvm"));
        assert!(!s.adaptive);
        assert_eq!(s.constraints.len(), 1);
        assert_eq!(s.constraints[0].attr, "arch");
    }

    #[test]
    fn adaptive_and_start_script_extensions() {
        let s = spec_of(r#"+(adaptive=1)(start_script="run.sh")(count>=2)"#);
        assert!(s.adaptive);
        assert_eq!(s.start_script.as_deref(), Some("run.sh"));
        assert_eq!(s.min_count, 2);
    }

    #[test]
    fn count_forms() {
        assert_eq!(spec_of("(count=3)").min_count, 3);
        assert_eq!(spec_of("(count=3)").max_count, Some(3));
        assert_eq!(spec_of("(count>2)").min_count, 3);
        assert_eq!(spec_of("(count<=5)").max_count, Some(5));
        assert_eq!(spec_of("(count<5)").max_count, Some(4));
        // Default when unspecified.
        assert_eq!(spec_of(r#"(arch="i686")"#).min_count, 1);
    }

    #[test]
    fn count_errors() {
        let bad = job_spec(&parse(r#"(count="four")"#).unwrap());
        assert!(matches!(bad, Err(SpecError::TypeMismatch { .. })));
        let bad = job_spec(&parse("(count>=5)(count<=2)").unwrap());
        assert!(matches!(bad, Err(SpecError::BadCount { .. })));
        let bad = job_spec(&parse("(count=-1)").unwrap());
        assert!(matches!(bad, Err(SpecError::BadCount { .. })));
    }

    fn linux() -> MachineAttrs {
        MachineAttrs::public_linux("n01")
    }

    fn sparc() -> MachineAttrs {
        let mut m = MachineAttrs::public_linux("s01");
        m.arch = Arch::Sparc;
        m.os = Os::Solaris;
        m
    }

    #[test]
    fn machine_matching() {
        let s = spec_of(r#"(arch="i686")(os="linux")"#);
        assert!(machine_matches(&s.constraints, &linux()));
        assert!(!machine_matches(&s.constraints, &sparc()));
    }

    #[test]
    fn hostname_and_negation() {
        let s = spec_of(r#"(hostname!="n01")"#);
        assert!(!machine_matches(&s.constraints, &linux()));
        assert!(machine_matches(&s.constraints, &sparc()));
    }

    #[test]
    fn speed_constraint_in_percent() {
        let mut fast = linux();
        fast.speed = 2.0;
        let s = spec_of("(speed>=150)");
        assert!(machine_matches(&s.constraints, &fast));
        assert!(!machine_matches(&s.constraints, &linux()));
    }

    #[test]
    fn ownership_constraints() {
        let private = MachineAttrs::private_linux("p01", "alice");
        let s = spec_of("(private=0)");
        assert!(machine_matches(&s.constraints, &linux()));
        assert!(!machine_matches(&s.constraints, &private));
        let s = spec_of(r#"(owner="alice")"#);
        assert!(machine_matches(&s.constraints, &private));
        assert!(!machine_matches(&s.constraints, &linux()));
    }

    #[test]
    fn unknown_attributes_never_match() {
        let s = spec_of("(flux_capacity>=88)");
        assert!(!machine_matches(&s.constraints, &linux()));
    }

    #[test]
    fn empty_constraints_match_everything() {
        assert!(machine_matches(&[], &linux()));
        assert!(machine_matches(&[], &sparc()));
    }
}
