//! Tokenizer for the Resource Specification Language.
//!
//! The surface syntax is the Globus RSL conjunction form the paper adopts:
//! `+(count>=4)(arch="i686")(module="pvm")`.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    Plus,
    Amp,
    LParen,
    RParen,
    /// `=`, `!=`, `>=`, `<=`, `>`, `<`
    Op(RelOp),
    /// A bare identifier or word value.
    Ident(String),
    /// A double-quoted string (quotes stripped, `\"` unescaped).
    Str(String),
    /// An integer literal.
    Int(i64),
}

/// Relational operators of RSL clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    Eq,
    Ne,
    Ge,
    Le,
    Gt,
    Lt,
}

impl RelOp {
    pub fn as_str(self) -> &'static str {
        match self {
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
            RelOp::Ge => ">=",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Lt => "<",
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lexing errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an RSL string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '&' => {
                out.push(Token::Amp);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '=' => {
                out.push(Token::Op(RelOp::Eq));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Op(RelOp::Ne));
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Op(RelOp::Ge));
                    i += 2;
                } else {
                    out.push(Token::Op(RelOp::Gt));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Op(RelOp::Le));
                    i += 2;
                } else {
                    out.push(Token::Op(RelOp::Lt));
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: i64 = text.parse().map_err(|_| LexError {
                    pos: start,
                    message: format!("bad integer '{text}'"),
                })?;
                out.push(Token::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_example() {
        let toks = lex(r#"+(count>=4)(arch="i686")(module="pvm")"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Plus,
                Token::LParen,
                Token::Ident("count".into()),
                Token::Op(RelOp::Ge),
                Token::Int(4),
                Token::RParen,
                Token::LParen,
                Token::Ident("arch".into()),
                Token::Op(RelOp::Eq),
                Token::Str("i686".into()),
                Token::RParen,
                Token::LParen,
                Token::Ident("module".into()),
                Token::Op(RelOp::Eq),
                Token::Str("pvm".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lexes_all_operators() {
        let toks = lex("(a=1)(b!=2)(c>=3)(d<=4)(e>5)(f<6)").unwrap();
        let ops: Vec<RelOp> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Op(o) => Some(*o),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                RelOp::Eq,
                RelOp::Ne,
                RelOp::Ge,
                RelOp::Le,
                RelOp::Gt,
                RelOp::Lt
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#"(x="a\"b")"#).unwrap();
        assert!(toks.contains(&Token::Str("a\"b".into())));
    }

    #[test]
    fn negative_integers() {
        let toks = lex("(x=-12)").unwrap();
        assert!(toks.contains(&Token::Int(-12)));
    }

    #[test]
    fn errors_are_positioned() {
        let err = lex("(x=@)").unwrap_err();
        assert_eq!(err.pos, 3);
        let err = lex("(x!y)").unwrap_err();
        assert!(err.message.contains("after '!'"));
        let err = lex(r#"(x="oops)"#).unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(lex("( a = 1 )").unwrap(), lex("(a=1)").unwrap());
    }
}
