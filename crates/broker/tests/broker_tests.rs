//! End-to-end tests of ResourceBroker on the simulated cluster: boot,
//! remote execution, the default redirect path, the two-phase module path,
//! reallocation, owner-return eviction, asynchronous grow offers, and
//! daemon fault tolerance.

use rb_broker::{build_standard_cluster, Cluster, JobRequest, JobRun};
use rb_parsys::{
    CalypsoConfig, CalypsoMaster, LamOrigin, LamOriginConfig, PvmMaster, PvmMasterConfig, TaskBag,
};
use rb_proto::{CommandSpec, ExitStatus, Payload, Signal, SymbolicHost};
use rb_simcore::{Duration, SimTime};

const FAR: SimTime = SimTime(3_600_000_000);

fn cluster(n: usize) -> Cluster {
    let mut c = build_standard_cluster(n, 42);
    c.settle();
    c
}

fn remote(host: &str, cmd: CommandSpec) -> JobRequest {
    JobRequest {
        rsl: "(adaptive=0)".into(),
        user: "alice".into(),
        run: JobRun::Remote {
            host: host.into(),
            cmd,
        },
    }
}

#[test]
fn cluster_boots_with_daemon_per_machine() {
    let c = cluster(4);
    assert_eq!(c.world.procs_named("rb-daemon").len(), 4);
    assert_eq!(c.world.procs_named("broker").len(), 1);
}

#[test]
fn remote_exec_on_named_host() {
    let mut c = cluster(2);
    let t0 = c.world.now();
    let appl = c.submit(c.machines[0], remote("n01", CommandSpec::Null));
    let status = c.await_appl(appl, FAR).expect("appl finished");
    assert_eq!(status, ExitStatus::Success);
    let elapsed = (c.world.now() - t0).as_secs_f64();
    // rsh' adds appl/sub-appl overhead over plain rsh's ~0.3s but stays
    // well under a second (Table 1's 0.6s row).
    assert!((0.3..1.0).contains(&elapsed), "elapsed {elapsed}");
    // The program actually ran on n01.
    let trace = c.world.trace();
    assert!(trace
        .with_topic("proc.start")
        .any(|e| e.detail.contains("null on n01")));
}

#[test]
fn remote_exec_on_symbolic_host_is_redirected() {
    let mut c = cluster(3);
    let appl = c.submit(c.machines[0], remote("anylinux", CommandSpec::Null));
    let status = c.await_appl(appl, FAR).expect("appl finished");
    assert_eq!(status, ExitStatus::Success);
    // The broker granted some machine and the null program ran there.
    assert!(c.world.trace().count("broker.grant") >= 1);
    assert!(c
        .world
        .trace()
        .with_topic("proc.start")
        .any(|e| e.detail.contains("null on ")));
}

#[test]
fn remote_exec_unknown_host_fails() {
    let mut c = cluster(2);
    let appl = c.submit(c.machines[0], remote("n99", CommandSpec::Null));
    let status = c.await_appl(appl, FAR).expect("appl finished");
    assert_eq!(status, ExitStatus::Failure(1));
}

#[test]
fn calypso_grows_through_default_redirect() {
    let mut c = cluster(4);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=3)(adaptive=1)".into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 500 },
                desired_workers: 3,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(10_000_000));
    assert!(c.world.alive(appl));
    assert_eq!(c.world.procs_named("calypso-worker").len(), 3);
    // Figure 5's step sequence: intercept -> appl asks broker -> grant ->
    // sub-appl -> program spawn -> worker registers with master.
    c.world
        .trace()
        .check_order(&[
            "rsh.intercept",
            "appl.default.redirect",
            "broker.grant",
            "subappl.start",
            "subappl.spawn",
            "calypso.worker.joined",
        ])
        .unwrap();
    // Workers run on three distinct machines chosen by the broker.
    let workers = c.world.procs_named("calypso-worker");
    let mut machines: Vec<_> = workers
        .iter()
        .map(|&w| c.world.proc_machine(w).unwrap())
        .collect();
    machines.sort();
    machines.dedup();
    assert_eq!(machines.len(), 3);
}

#[test]
fn pvm_grows_through_two_phase_module_protocol() {
    let mut c = cluster(3);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=1)(adaptive=1)(module="pvm")"#.into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                initial_hosts: vec!["anylinux".into()],
                ..Default::default()
            }))),
        },
    );
    c.world.run_until(SimTime(15_000_000));
    assert!(c.world.alive(appl));
    // One slave pvmd is up, accepted by the master (hostname matched).
    assert_eq!(c.world.procs_named("pvmd").len(), 1);
    assert_eq!(c.world.trace().count("pvm.slave.refused"), 0);
    // Figure 6's two-phase order.
    c.world
        .trace()
        .check_order(&[
            "rsh.intercept",      // phase I: pvmd's rsh anylinux
            "appl.module.phase1", // appl fails it, requests allocation
            "broker.grant",
            "module.pvm.grow", // pvm_grow console
            "pvm.add.attempt", // master re-issues rsh with real name
            "appl.module.phase2",
            "subappl.spawn",
            "pvm.slave.accepted",
        ])
        .unwrap();
    // The master saw exactly one failed add (phase I) and one success.
    assert_eq!(c.world.trace().count("pvm.add.failed"), 1);
}

#[test]
fn lam_grows_through_module_protocol_too() {
    let mut c = cluster(3);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=2)(adaptive=1)(module="lam")"#.into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(LamOrigin::new(LamOriginConfig {
                boot_hosts: vec!["anylinux".into()],
                ..Default::default()
            }))),
        },
    );
    c.world.run_until(SimTime(10_000_000));
    assert_eq!(c.world.procs_named("lamd").len(), 1);
    // A second symbolic grow once the first resolved (the origin's host
    // table now holds the real name, so "anylinux" is fresh again).
    let origin = c.world.procs_named("lam-origin")[0];
    c.world.send_from_harness(
        origin,
        Payload::Ctl(rb_proto::CtlMsg::GrowHint { count: 1 }),
    );
    c.world.run_until(SimTime(25_000_000));
    assert!(c.world.alive(appl));
    assert_eq!(c.world.procs_named("lamd").len(), 2);
    assert_eq!(c.world.trace().count("lam.node.refused"), 0);
    assert!(c.world.trace().count("module.lam.grow") >= 2);
}

#[test]
fn pvm_with_explicit_hosts_passes_through() {
    let mut c = cluster(3);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(adaptive=1)(module="pvm")"#.into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                initial_hosts: vec!["n01".into(), "n02".into()],
                ..Default::default()
            }))),
        },
    );
    c.world.run_until(SimTime(10_000_000));
    assert_eq!(c.world.procs_named("pvmd").len(), 2);
    // No module invocation, no broker allocation: pure passthrough.
    assert_eq!(c.world.trace().count("module.pvm.grow"), 0);
    assert_eq!(c.world.trace().count("broker.grant"), 0);
    assert_eq!(c.world.trace().count("rsh.passthrough"), 2);
}

#[test]
fn reallocation_takes_machine_from_calypso_for_sequential_job() {
    // The paper's Table 2 setup: commands are issued from the user's own
    // workstation n00 (not in the shared pool: private, owner at console);
    // an adaptive Calypso job holds the two public machines.
    let mut opts = rb_broker::ClusterOptions {
        seed: 42,
        ..Default::default()
    };
    opts.machines = vec![
        rb_proto::MachineAttrs::private_linux("n00", "alice"),
        rb_proto::MachineAttrs::public_linux("n01"),
        rb_proto::MachineAttrs::public_linux("n02"),
    ];
    let mut c = rb_broker::build_cluster(opts);
    c.world.set_owner_present(c.machines[0], true);
    c.settle();
    let cal = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 400 },
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(10_000_000));
    assert_eq!(c.world.procs_named("calypso-worker").len(), 2);

    let t0 = c.world.now();
    let seq = c.submit(c.machines[0], remote("anylinux", CommandSpec::Null));
    let status = c.await_appl(seq, FAR).expect("sequential job finished");
    assert_eq!(status, ExitStatus::Success);
    let elapsed = (c.world.now() - t0).as_secs_f64();
    // Table 2: a reallocation completes in about a second.
    assert!((0.7..2.0).contains(&elapsed), "realloc elapsed {elapsed}");
    // The eviction went through the signal path and Calypso retreated
    // gracefully.
    c.world
        .trace()
        .check_order(&[
            "broker.reclaim",
            "appl.release",
            "subappl.release",
            "calypso.worker.retreat",
            "subappl.released",
            "broker.freed",
            "broker.grant",
        ])
        .unwrap();
    assert!(c.world.alive(cal), "victim job keeps running");
}

#[test]
fn owner_return_evicts_adaptive_job_from_private_machine() {
    let mut opts = rb_broker::ClusterOptions {
        seed: 9,
        ..Default::default()
    };
    opts.machines = vec![
        rb_proto::MachineAttrs::public_linux("n00"),
        rb_proto::MachineAttrs::private_linux("p01", "bob"),
    ];
    let mut c = rb_broker::build_cluster(opts);
    c.settle();
    let p01 = c.world.machine_by_host("p01").unwrap();

    // n00 is the user's busy workstation: daemons report its load, so the
    // broker prefers the idle private machine for the adaptive job.
    c.world.spawn_user(
        c.machines[0],
        Box::new(rb_simnet::LoopProg::new(600_000)),
        rb_simnet::ProcEnv::user_standard("alice"),
    );
    c.world.run_until(SimTime(5_000_000));

    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 300 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(10_000_000));
    // The only other machine is private; the adaptive job may use it.
    let workers = c.world.procs_named("calypso-worker");
    assert_eq!(workers.len(), 1);
    assert_eq!(c.world.proc_machine(workers[0]), Some(p01));

    // Bob comes back: the daemon reports it; the worker must be evicted.
    c.world.set_owner_present(p01, true);
    c.world.run_until(SimTime(20_000_000));
    assert!(c.world.procs_named("calypso-worker").is_empty());
    assert!(c.world.trace().count("broker.evict.owner") >= 1);
    assert_eq!(c.world.app_procs_on(p01), 0);

    // Bob leaves; after the 30 s console-quiet hold-down the machine is
    // offered back to the hungry job, which grows onto it again.
    c.world.set_owner_present(p01, false);
    c.world.run_until(SimTime(35_000_000));
    assert!(
        c.world.procs_named("calypso-worker").is_empty(),
        "console-activity hold-down keeps the machine reserved for bob"
    );
    c.world.run_until(SimTime(90_000_000));
    assert_eq!(c.world.procs_named("calypso-worker").len(), 1);
    assert!(c.world.trace().count("broker.offer") >= 1);
}

#[test]
fn freed_machine_is_offered_to_hungry_job() {
    // 2 machines; a sequential loop occupies n01; Calypso wants 1 worker
    // but nothing is free. When the loop finishes, the broker offers the
    // machine and Calypso grows asynchronously.
    let mut c = cluster(2);
    let seq = c.submit(
        c.machines[0],
        remote("n01", CommandSpec::Loop { cpu_millis: 5_000 }),
    );
    c.world.run_until(SimTime(1_000_000));
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "bob".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 300 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(3_000_000));
    // Nothing free: the grow was denied. (Machine 0 hosts the broker and
    // the masters; the policy can still grant it if unloaded — so only
    // assert the eventual grow below.)
    let _ = seq;
    c.world.run_until(SimTime(30_000_000));
    assert_eq!(c.world.procs_named("calypso-worker").len(), 1);
}

#[test]
fn broker_restarts_dead_daemon() {
    let mut c = cluster(2);
    let daemons = c.world.procs_named("rb-daemon");
    let victim = daemons
        .iter()
        .find(|&&d| c.world.proc_machine(d) == Some(c.machines[1]))
        .copied()
        .unwrap();
    c.world.kill_from_harness(victim, Signal::Kill);
    c.world.run_until(c.world.now() + Duration::from_secs(1));
    assert_eq!(c.world.procs_named("rb-daemon").len(), 1);
    // Within a few liveness ticks the broker respawns it.
    c.world.run_until(c.world.now() + Duration::from_secs(30));
    assert_eq!(c.world.procs_named("rb-daemon").len(), 2);
    assert!(c.world.trace().count("broker.daemon.lost") >= 1);
}

#[test]
fn bad_rsl_is_rejected_locally() {
    let mut c = cluster(2);
    let appl = c.submit(c.machines[0], {
        JobRequest {
            rsl: "((((".into(),
            user: "alice".into(),
            run: JobRun::Remote {
                host: "n01".into(),
                cmd: CommandSpec::Null,
            },
        }
    });
    let status = c.await_appl(appl, FAR).unwrap();
    assert_eq!(status, ExitStatus::Failure(2));
}

#[test]
fn unknown_module_is_rejected() {
    let mut c = cluster(2);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"(module="condor")"#.into(),
            user: "alice".into(),
            run: JobRun::Remote {
                host: "n01".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    let status = c.await_appl(appl, FAR).unwrap();
    assert_eq!(status, ExitStatus::Failure(2));
}

#[test]
fn rsl_arch_constraint_restricts_allocation() {
    let mut opts = rb_broker::ClusterOptions {
        seed: 3,
        ..Default::default()
    };
    let mut sparc = rb_proto::MachineAttrs::public_linux("s01");
    sparc.arch = rb_proto::Arch::Sparc;
    opts.machines = vec![
        rb_proto::MachineAttrs::public_linux("n00"),
        sparc,
        rb_proto::MachineAttrs::public_linux("n02"),
    ];
    let mut c = rb_broker::build_cluster(opts);
    c.settle();
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(arch="i686")"#.into(),
            user: "alice".into(),
            run: JobRun::Remote {
                host: "anyhost".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    let status = c.await_appl(appl, FAR).unwrap();
    assert_eq!(status, ExitStatus::Success);
    // Even with `anyhost`, the sparc machine is never chosen.
    assert!(!c
        .world
        .trace()
        .with_topic("proc.start")
        .any(|e| e.detail.contains("null on s01")));
}

#[test]
fn two_calypso_jobs_share_the_cluster_evenly() {
    // 5 machines: broker/masters on n00; two adaptive jobs each wanting 4
    // workers must end up sharing the 4 remaining machines 2/2.
    let mut c = cluster(5);
    for user in ["alice", "bob"] {
        c.submit(
            c.machines[0],
            JobRequest {
                rsl: "+(count>=4)(adaptive=1)".into(),
                user: user.into(),
                run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                    tasks: TaskBag::Endless { cpu_millis: 400 },
                    desired_workers: 4,
                    hostfile: vec!["anylinux".into()],
                    task_timeout: None,
                }))),
            },
        );
        c.world.run_until(c.world.now() + Duration::from_secs(5));
    }
    c.world.run_until(c.world.now() + Duration::from_secs(60));
    let workers = c.world.procs_named("calypso-worker");
    // Both jobs hold roughly half; exact split depends on reclaim churn,
    // but neither job may hog everything.
    assert!(workers.len() >= 4, "workers: {}", workers.len());
    // Count workers per master via machines: each worker's machine hosts
    // exactly one worker.
    let mut machines: Vec<_> = workers
        .iter()
        .filter_map(|&w| c.world.proc_machine(w))
        .collect();
    machines.sort();
    machines.dedup();
    assert!(machines.len() >= 4);
}

#[test]
fn broker_query_reports_cluster_state() {
    use rb_proto::{BrokerMsg, ProcId};
    use std::sync::Arc;
    use std::sync::Mutex;

    struct Query {
        broker: ProcId,
        lines: Arc<Mutex<Vec<String>>>,
    }
    impl rb_simnet::Behavior for Query {
        fn name(&self) -> &'static str {
            "query"
        }
        fn on_start(&mut self, ctx: &mut rb_simnet::Ctx<'_>) {
            let me = ctx.me();
            ctx.send(
                self.broker,
                Payload::Broker(BrokerMsg::QueryCluster { reply_to: me }),
            );
        }
        fn on_message(&mut self, ctx: &mut rb_simnet::Ctx<'_>, _from: ProcId, msg: Payload) {
            if let Payload::Broker(BrokerMsg::ClusterStatus { lines }) = msg {
                *self.lines.lock().unwrap() = lines;
                ctx.exit(ExitStatus::Success);
            }
        }
    }
    let mut c = cluster(3);
    let lines = Arc::new(Mutex::new(Vec::new()));
    c.world.spawn_user(
        c.machines[0],
        Box::new(Query {
            broker: c.broker,
            lines: lines.clone(),
        }),
        rb_simnet::ProcEnv::system("alice"),
    );
    c.world.run_until(c.world.now() + Duration::from_secs(1));
    let lines = lines.lock().unwrap();
    assert_eq!(lines.iter().filter(|l| l.starts_with('n')).count(), 3);
}

#[test]
fn symbolic_constraint_matching_respected_for_alloc() {
    // `anylinux` must never land on a solaris machine even if it is free.
    let mut opts = rb_broker::ClusterOptions {
        seed: 5,
        ..Default::default()
    };
    let mut sol = rb_proto::MachineAttrs::public_linux("s01");
    sol.os = rb_proto::Os::Solaris;
    opts.machines = vec![
        rb_proto::MachineAttrs::public_linux("n00"),
        sol,
        rb_proto::MachineAttrs::public_linux("n02"),
    ];
    let mut c = rb_broker::build_cluster(opts);
    c.settle();
    let _ = SymbolicHost::AnyOs(rb_proto::Os::Linux);
    let appl = c.submit(c.machines[0], remote("anylinux", CommandSpec::Null));
    let status = c.await_appl(appl, FAR).unwrap();
    // s01 is free but runs Solaris; n00 is the job's home machine. The
    // only eligible target is n02.
    assert_eq!(status, ExitStatus::Success);
    assert!(c
        .world
        .trace()
        .with_topic("proc.start")
        .any(|e| e.detail.contains("null on n02")));
    assert!(!c
        .world
        .trace()
        .with_topic("proc.start")
        .any(|e| e.detail.contains("null on s01")));
}

#[test]
fn release_for_unheld_machine_is_answered_defensively() {
    // The broker asks an appl to release a machine it no longer holds
    // (e.g. the child exited in the same instant): the appl must report it
    // freed rather than dropping the request.
    let mut c = cluster(2);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 500 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(10_000_000));
    // Inject a rogue release for a machine the job does not hold (its own
    // home machine n00).
    c.world.send_from_harness(
        appl,
        Payload::Broker(rb_proto::BrokerMsg::ReleaseMachine {
            machine: c.machines[0],
        }),
    );
    c.world.run_until(SimTime(12_000_000));
    // The appl answered with MachineFreed (visible as a broker.freed line).
    assert!(c
        .world
        .trace()
        .with_topic("broker.freed")
        .any(|e| e.detail.starts_with("n00")));
    assert!(c.world.alive(appl));
}

#[test]
fn symbolic_rsh_without_appl_falls_back_to_standard_and_fails() {
    // A user has rsh' on PATH but runs outside broker management: a
    // symbolic host behaves exactly like plain rsh (unknown host).
    use rb_simnet::{Behavior, Ctx, ProcEnv};
    struct LoneGrower {
        outcome: std::sync::Arc<std::sync::Mutex<Option<bool>>>,
    }
    impl Behavior for LoneGrower {
        fn name(&self) -> &'static str {
            "lone-grower"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.rsh("anylinux", CommandSpec::Null);
        }
        fn on_rsh_result(
            &mut self,
            ctx: &mut Ctx<'_>,
            _handle: rb_proto::RshHandle,
            result: Result<ExitStatus, rb_proto::RshError>,
        ) {
            *self.outcome.lock().unwrap() = Some(matches!(result, Ok(ExitStatus::Success)));
            ctx.exit(ExitStatus::Success);
        }
    }
    let mut c = cluster(2);
    let outcome = std::sync::Arc::new(std::sync::Mutex::new(None));
    c.world.spawn_user(
        c.machines[0],
        Box::new(LoneGrower {
            outcome: outcome.clone(),
        }),
        ProcEnv::user_broker("loner"),
    );
    c.world.run_until(SimTime(5_000_000));
    assert_eq!(
        *outcome.lock().unwrap(),
        Some(false),
        "symbolic name must fail"
    );
    assert!(c.world.trace().count("rsh.fallback") >= 1);
}
