//! Randomized tests of the allocation policies: for arbitrary cluster
//! states and requests, decisions never violate the broker's invariants.
//! Generation is driven by the in-repo seeded PRNG so every failure is
//! replayable from its seed.

use rb_broker::{
    AllocContext, Decision, DefaultPolicy, FifoPolicy, JobView, MachineUse, MachineView, Policy,
    ReclaimRule,
};
use rb_proto::{Arch, JobId, MachineAttrs, MachineId, Os, Ownership, SymbolicHost};
use rb_simcore::SimRng;

fn rand_attrs(rng: &mut SimRng, id: u32) -> MachineAttrs {
    let arch = [Arch::I686, Arch::Sparc, Arch::Alpha][rng.index(3)];
    let os = [Os::Linux, Os::Solaris, Os::Osf1][rng.index(3)];
    let ownership = if rng.chance(0.5) {
        Ownership::Public
    } else {
        Ownership::Private {
            owner: "owner".into(),
        }
    };
    MachineAttrs {
        hostname: format!("n{id:02}"),
        arch,
        os,
        ownership,
        speed: 1.0,
    }
}

fn rand_use(rng: &mut SimRng, jobs: u32) -> MachineUse {
    match rng.index(5) {
        0 => MachineUse::Free,
        1 => MachineUse::Reclaiming,
        2 => MachineUse::OwnerHeld,
        3 => MachineUse::Allocated {
            job: JobId(rng.uniform_u64(1, jobs as u64 + 1) as u32),
            adaptive: rng.chance(0.5),
        },
        _ => MachineUse::Reserved {
            job: JobId(rng.uniform_u64(1, jobs as u64 + 1) as u32),
        },
    }
}

fn rand_machine(rng: &mut SimRng, id: u32, jobs: u32) -> MachineView {
    MachineView {
        id: MachineId(id),
        attrs: rand_attrs(rng, id),
        state: rand_use(rng, jobs),
        owner_present: rng.chance(0.5),
        load: rng.uniform_u64(0, 5) as u32,
        daemon_alive: rng.chance(0.5),
    }
}

fn rand_cluster(rng: &mut SimRng, jobs: u32) -> Vec<MachineView> {
    (0..rng.uniform_u64(1, 12))
        .map(|i| rand_machine(rng, i as u32, jobs))
        .collect()
}

fn rand_jobs(rng: &mut SimRng, jobs: u32) -> Vec<JobView> {
    let n = rng.uniform_u64(1, jobs as u64 + 1);
    (0..n)
        .map(|i| JobView {
            job: JobId(i as u32 + 1),
            adaptive: rng.chance(0.5),
            held: rng.uniform_u64(0, 8) as u32,
            desired: rng.uniform_u64(1, 8) as u32,
        })
        .collect()
}

fn rand_constraint(rng: &mut SimRng) -> SymbolicHost {
    match rng.index(3) {
        0 => SymbolicHost::Any,
        1 => SymbolicHost::AnyOs(Os::Linux),
        _ => SymbolicHost::AnyArch(Arch::I686),
    }
}

fn req(job: u32, adaptive: bool, held: u32, constraint: SymbolicHost) -> AllocContext {
    AllocContext {
        job: JobId(job),
        adaptive,
        constraint,
        rsl_constraints: Vec::new(),
        held,
        home: None,
        user: "u".into(),
    }
}

/// The invariants every policy must uphold, regardless of rule set.
fn check_decision(
    decision: &Decision,
    req: &AllocContext,
    machines: &[MachineView],
    jobs: &[JobView],
) {
    match decision {
        Decision::Grant(m) => {
            let mv = machines
                .iter()
                .find(|x| x.id == *m)
                .expect("granted machine exists");
            // Only free machines, or machines reserved for this very job.
            assert!(
                mv.state == MachineUse::Free || mv.state == MachineUse::Reserved { job: req.job },
                "granted {:?}",
                mv.state
            );
            assert!(mv.daemon_alive, "granted machine has no daemon");
            assert!(!mv.owner_present, "granted machine has owner present");
            assert!(req.constraint.matches(&mv.attrs), "constraint violated");
            if mv.attrs.ownership.is_private() {
                assert!(req.adaptive, "private machine to non-adaptive job");
            }
        }
        Decision::Reclaim { victim, machine } => {
            assert!(*victim != req.job, "self-reclaim");
            let mv = machines
                .iter()
                .find(|x| x.id == *machine)
                .expect("reclaimed machine exists");
            assert!(
                matches!(mv.state, MachineUse::Allocated { job, .. } if job == *victim),
                "reclaimed machine not held by victim"
            );
            let jv = jobs
                .iter()
                .find(|j| j.job == *victim)
                .expect("victim known");
            assert!(jv.adaptive, "reclaim from non-adaptive job");
            assert!(req.constraint.matches(&mv.attrs));
        }
        Decision::Deny { .. } => {}
    }
}

#[test]
fn default_policy_decisions_respect_invariants() {
    let mut rng = SimRng::seeded(0xb01);
    for _ in 0..256 {
        let machines = rand_cluster(&mut rng, 4);
        let jobs = rand_jobs(&mut rng, 4);
        let job = rng.uniform_u64(1, 5) as u32;
        let adaptive = rng.chance(0.5);
        let held = rng.uniform_u64(0, 8) as u32;
        let constraint = rand_constraint(&mut rng);
        let rule = if rng.chance(0.5) {
            ReclaimRule::Demand
        } else {
            ReclaimRule::EvenPartition
        };
        let mut p = DefaultPolicy::with_rule(rule);
        let r = req(job, adaptive, held, constraint);
        let d = p.allocate(&r, &machines, &jobs);
        check_decision(&d, &r, &machines, &jobs);
    }
}

#[test]
fn even_partition_never_reclaims_below_parity() {
    let mut rng = SimRng::seeded(0xb02);
    for _ in 0..256 {
        let machines = rand_cluster(&mut rng, 4);
        let jobs = rand_jobs(&mut rng, 4);
        let job = rng.uniform_u64(1, 5) as u32;
        let held = rng.uniform_u64(0, 8) as u32;
        let mut p = DefaultPolicy::default();
        let r = req(job, true, held, SymbolicHost::Any);
        if let Decision::Reclaim { victim, .. } = p.allocate(&r, &machines, &jobs) {
            let jv = jobs.iter().find(|j| j.job == victim).unwrap();
            assert!(
                jv.held > r.held + 1,
                "reclaimed from {jv:?} though requester holds {}",
                r.held
            );
        }
    }
}

#[test]
fn fifo_grants_lowest_eligible_id_or_denies() {
    let mut rng = SimRng::seeded(0xb03);
    for _ in 0..256 {
        let machines = rand_cluster(&mut rng, 4);
        let jobs = rand_jobs(&mut rng, 4);
        let job = rng.uniform_u64(1, 5) as u32;
        let adaptive = rng.chance(0.5);
        let constraint = rand_constraint(&mut rng);
        let mut p = FifoPolicy;
        let r = req(job, adaptive, 0, constraint);
        let d = p.allocate(&r, &machines, &jobs);
        check_decision(&d, &r, &machines, &jobs);
        assert!(!matches!(d, Decision::Reclaim { .. }), "fifo reclaimed");
    }
}

#[test]
fn offer_targets_only_hungry_adaptive_jobs() {
    let mut rng = SimRng::seeded(0xb04);
    for _ in 0..256 {
        let jobs = rand_jobs(&mut rng, 4);
        let mut p = DefaultPolicy::default();
        let free = MachineView {
            id: MachineId(99),
            attrs: MachineAttrs::public_linux("n99"),
            state: MachineUse::Free,
            owner_present: false,
            load: 0,
            daemon_alive: true,
        };
        if let Some(job) = p.offer(&free, &jobs) {
            let jv = jobs.iter().find(|j| j.job == job).unwrap();
            assert!(jv.adaptive, "offered to non-adaptive job");
            assert!(jv.held < jv.desired, "offered to a sated job");
        }
    }
}

#[test]
fn decisions_are_deterministic() {
    let mut rng = SimRng::seeded(0xb05);
    for _ in 0..256 {
        let machines = rand_cluster(&mut rng, 3);
        let jobs = rand_jobs(&mut rng, 3);
        let job = rng.uniform_u64(1, 4) as u32;
        let adaptive = rng.chance(0.5);
        let r = req(job, adaptive, 1, SymbolicHost::Any);
        let d1 = DefaultPolicy::default().allocate(&r, &machines, &jobs);
        let d2 = DefaultPolicy::default().allocate(&r, &machines, &jobs);
        assert_eq!(d1, d2);
    }
}
