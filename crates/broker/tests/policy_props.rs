//! Property-based tests of the allocation policies: for arbitrary cluster
//! states and requests, decisions never violate the broker's invariants.

use proptest::prelude::*;
use rb_broker::{
    AllocContext, Decision, DefaultPolicy, FifoPolicy, JobView, MachineUse, MachineView, Policy,
    ReclaimRule,
};
use rb_proto::{Arch, JobId, MachineAttrs, MachineId, Os, Ownership, SymbolicHost};

fn arb_attrs(id: u32) -> impl Strategy<Value = MachineAttrs> {
    (
        prop_oneof![Just(Arch::I686), Just(Arch::Sparc), Just(Arch::Alpha)],
        prop_oneof![Just(Os::Linux), Just(Os::Solaris), Just(Os::Osf1)],
        prop_oneof![
            Just(Ownership::Public),
            Just(Ownership::Private {
                owner: "owner".into()
            })
        ],
    )
        .prop_map(move |(arch, os, ownership)| MachineAttrs {
            hostname: format!("n{id:02}"),
            arch,
            os,
            ownership,
            speed: 1.0,
        })
}

fn arb_use(jobs: u32) -> impl Strategy<Value = MachineUse> {
    prop_oneof![
        Just(MachineUse::Free),
        Just(MachineUse::Reclaiming),
        Just(MachineUse::OwnerHeld),
        (1..=jobs, any::<bool>()).prop_map(|(j, adaptive)| MachineUse::Allocated {
            job: JobId(j),
            adaptive,
        }),
        (1..=jobs).prop_map(|j| MachineUse::Reserved { job: JobId(j) }),
    ]
}

fn arb_machine(id: u32, jobs: u32) -> impl Strategy<Value = MachineView> {
    (
        arb_attrs(id),
        arb_use(jobs),
        any::<bool>(),
        0u32..5,
        any::<bool>(),
    )
        .prop_map(
            move |(attrs, state, owner_present, load, daemon_alive)| MachineView {
                id: MachineId(id),
                attrs,
                state,
                owner_present,
                load,
                daemon_alive,
            },
        )
}

fn arb_cluster(jobs: u32) -> impl Strategy<Value = Vec<MachineView>> {
    proptest::collection::vec(0u32..12, 1..12).prop_flat_map(move |ids| {
        ids.into_iter()
            .enumerate()
            .map(|(i, _)| arb_machine(i as u32, jobs))
            .collect::<Vec<_>>()
    })
}

fn arb_jobs(jobs: u32) -> impl Strategy<Value = Vec<JobView>> {
    (1..=jobs)
        .prop_flat_map(|n| proptest::collection::vec((any::<bool>(), 0u32..8, 1u32..8), n as usize))
        .prop_map(|specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (adaptive, held, desired))| JobView {
                    job: JobId(i as u32 + 1),
                    adaptive,
                    held,
                    desired,
                })
                .collect()
        })
}

fn arb_constraint() -> impl Strategy<Value = SymbolicHost> {
    prop_oneof![
        Just(SymbolicHost::Any),
        Just(SymbolicHost::AnyOs(Os::Linux)),
        Just(SymbolicHost::AnyArch(Arch::I686)),
    ]
}

fn req(job: u32, adaptive: bool, held: u32, constraint: SymbolicHost) -> AllocContext {
    AllocContext {
        job: JobId(job),
        adaptive,
        constraint,
        rsl_constraints: Vec::new(),
        held,
        home: None,
        user: "u".into(),
    }
}

/// The invariants every policy must uphold, regardless of rule set.
fn check_decision(
    decision: &Decision,
    req: &AllocContext,
    machines: &[MachineView],
    jobs: &[JobView],
) -> Result<(), TestCaseError> {
    match decision {
        Decision::Grant(m) => {
            let mv = machines
                .iter()
                .find(|x| x.id == *m)
                .expect("granted machine exists");
            // Only free machines, or machines reserved for this very job.
            prop_assert!(
                mv.state == MachineUse::Free || mv.state == MachineUse::Reserved { job: req.job },
                "granted {:?}",
                mv.state
            );
            prop_assert!(mv.daemon_alive, "granted machine has no daemon");
            prop_assert!(!mv.owner_present, "granted machine has owner present");
            prop_assert!(req.constraint.matches(&mv.attrs), "constraint violated");
            if mv.attrs.ownership.is_private() {
                prop_assert!(req.adaptive, "private machine to non-adaptive job");
            }
        }
        Decision::Reclaim { victim, machine } => {
            prop_assert!(*victim != req.job, "self-reclaim");
            let mv = machines
                .iter()
                .find(|x| x.id == *machine)
                .expect("reclaimed machine exists");
            prop_assert!(
                matches!(mv.state, MachineUse::Allocated { job, .. } if job == *victim),
                "reclaimed machine not held by victim"
            );
            let jv = jobs
                .iter()
                .find(|j| j.job == *victim)
                .expect("victim known");
            prop_assert!(jv.adaptive, "reclaim from non-adaptive job");
            prop_assert!(req.constraint.matches(&mv.attrs));
        }
        Decision::Deny { .. } => {}
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn default_policy_decisions_respect_invariants(
        machines in arb_cluster(4),
        jobs in arb_jobs(4),
        job in 1u32..5,
        adaptive in any::<bool>(),
        held in 0u32..8,
        constraint in arb_constraint(),
        demand in any::<bool>(),
    ) {
        let rule = if demand { ReclaimRule::Demand } else { ReclaimRule::EvenPartition };
        let mut p = DefaultPolicy::with_rule(rule);
        let r = req(job, adaptive, held, constraint);
        let d = p.allocate(&r, &machines, &jobs);
        check_decision(&d, &r, &machines, &jobs)?;
    }

    #[test]
    fn even_partition_never_reclaims_below_parity(
        machines in arb_cluster(4),
        jobs in arb_jobs(4),
        job in 1u32..5,
        held in 0u32..8,
    ) {
        let mut p = DefaultPolicy::default();
        let r = req(job, true, held, SymbolicHost::Any);
        if let Decision::Reclaim { victim, .. } = p.allocate(&r, &machines, &jobs) {
            let jv = jobs.iter().find(|j| j.job == victim).unwrap();
            prop_assert!(jv.held > r.held + 1,
                "reclaimed from {:?} though requester holds {}", jv, r.held);
        }
    }

    #[test]
    fn fifo_grants_lowest_eligible_id_or_denies(
        machines in arb_cluster(4),
        jobs in arb_jobs(4),
        job in 1u32..5,
        adaptive in any::<bool>(),
        constraint in arb_constraint(),
    ) {
        let mut p = FifoPolicy;
        let r = req(job, adaptive, 0, constraint);
        let d = p.allocate(&r, &machines, &jobs);
        check_decision(&d, &r, &machines, &jobs)?;
        prop_assert!(!matches!(d, Decision::Reclaim { .. }), "fifo reclaimed");
    }

    #[test]
    fn offer_targets_only_hungry_adaptive_jobs(
        machines in arb_cluster(4),
        jobs in arb_jobs(4),
    ) {
        let mut p = DefaultPolicy::default();
        let free = MachineView {
            id: MachineId(99),
            attrs: MachineAttrs::public_linux("n99"),
            state: MachineUse::Free,
            owner_present: false,
            load: 0,
            daemon_alive: true,
        };
        let _ = &machines;
        if let Some(job) = p.offer(&free, &jobs) {
            let jv = jobs.iter().find(|j| j.job == job).unwrap();
            prop_assert!(jv.adaptive, "offered to non-adaptive job");
            prop_assert!(jv.held < jv.desired, "offered to a sated job");
        }
    }

    #[test]
    fn decisions_are_deterministic(
        machines in arb_cluster(3),
        jobs in arb_jobs(3),
        job in 1u32..4,
        adaptive in any::<bool>(),
    ) {
        let r = req(job, adaptive, 1, SymbolicHost::Any);
        let d1 = DefaultPolicy::default().allocate(&r, &machines, &jobs);
        let d2 = DefaultPolicy::default().allocate(&r, &machines, &jobs);
        prop_assert_eq!(d1, d2);
    }
}
