//! Protocol participation declared by every broker-stack behavior.
//!
//! Each [`ProtocolSpec`] states which wire-message variants the actor
//! emits and which it dispatches on, plus the request/reply edges it owns.
//! `rb-analyze` aggregates these into the system-wide send/handle graph;
//! a behavior change that adds or drops a message without updating its
//! spec here fails the protocol-graph test.

use rb_proto::{ProtocolSpec, ReqEdge};

/// The resource broker itself (`broker.rs`).
pub const BROKER_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "broker",
    sends: &[
        "Broker::JobAccepted",
        "Broker::JobRejected",
        "Broker::AllocGrant",
        "Broker::AllocDenied",
        "Broker::ReleaseMachine",
        "Broker::GrowOffer",
        "Broker::ClusterStatus",
    ],
    handles: &[
        "Broker::DaemonHello",
        "Broker::DaemonStatus",
        "Broker::DaemonPong",
        "Broker::RegisterJob",
        "Broker::AllocRequest",
        "Broker::MachineFreed",
        "Broker::MachineUnreachable",
        "Broker::JobDone",
        "Broker::QueryCluster",
    ],
    requests: &[
        ReqEdge {
            request: "Broker::RegisterJob",
            replies: &["Broker::JobAccepted", "Broker::JobRejected"],
            has_timeout: false,
        },
        ReqEdge {
            request: "Broker::AllocRequest",
            replies: &["Broker::AllocGrant", "Broker::AllocDenied"],
            // The appl retries a lapsed request through its own timers.
            has_timeout: true,
        },
        ReqEdge {
            request: "Broker::QueryCluster",
            replies: &["Broker::ClusterStatus"],
            has_timeout: false,
        },
    ],
};

/// The per-machine daemon (`daemon.rs`).
pub const DAEMON_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "rb-daemon",
    sends: &[
        "Broker::DaemonHello",
        "Broker::DaemonStatus",
        "Broker::DaemonPong",
    ],
    handles: &["Broker::DaemonPing"],
    requests: &[ReqEdge {
        request: "Broker::DaemonPing",
        replies: &["Broker::DaemonPong"],
        has_timeout: true,
    }],
};

/// The per-job application layer (`appl.rs`).
pub const APPL_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "appl",
    sends: &[
        "Broker::RegisterJob",
        "Broker::AllocRequest",
        "Broker::MachineFreed",
        "Broker::MachineUnreachable",
        "Broker::JobDone",
        "Appl::RshOutcome",
        "Appl::RshProceedStandard",
        "Appl::Program",
        "Appl::ReleaseChild",
        "Appl::Shutdown",
        // Default-redirect jobs are nudged to regrow on a GrowOffer.
        "Ctl::GrowHint",
    ],
    handles: &[
        "Broker::JobAccepted",
        "Broker::JobRejected",
        "Broker::AllocGrant",
        "Broker::AllocDenied",
        "Broker::ReleaseMachine",
        "Broker::GrowOffer",
        "Appl::Intercepted",
        "Appl::SubApplReady",
        "Appl::ChildStarted",
        "Appl::ChildDetached",
        "Appl::ChildExited",
        "Appl::Released",
    ],
    requests: &[ReqEdge {
        // The appl bounds every vacate with the release hard deadline.
        request: "Appl::ReleaseChild",
        replies: &["Appl::Released"],
        has_timeout: true,
    }],
};

/// The per-grow remote agent (`subappl.rs`).
pub const SUBAPPL_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "sub-appl",
    sends: &[
        "Appl::SubApplReady",
        "Appl::ChildStarted",
        "Appl::ChildDetached",
        "Appl::ChildExited",
        "Appl::Released",
    ],
    handles: &["Appl::Program", "Appl::ReleaseChild", "Appl::Shutdown"],
    requests: &[ReqEdge {
        // SubApplReady awaits the Program to run, bounded by the
        // program-wait timeout.
        request: "Appl::SubApplReady",
        replies: &["Appl::Program"],
        has_timeout: true,
    }],
};

/// The interposed `rsh'` shim (`rshprime.rs`).
pub const RSHPRIME_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "rsh'",
    sends: &["Appl::Intercepted"],
    handles: &["Appl::RshOutcome", "Appl::RshProceedStandard"],
    requests: &[ReqEdge {
        // rsh' falls back to the standard rsh if the appl never answers.
        request: "Appl::Intercepted",
        replies: &["Appl::RshOutcome", "Appl::RshProceedStandard"],
        has_timeout: true,
    }],
};

/// The `rbstat` status tool (`tools.rs`).
pub const RBSTAT_SPEC: ProtocolSpec = ProtocolSpec {
    actor: "rbstat",
    sends: &["Broker::QueryCluster"],
    handles: &["Broker::ClusterStatus"],
    requests: &[],
};

/// Every spec this crate contributes to the protocol graph.
pub fn protocol_specs() -> Vec<&'static ProtocolSpec> {
    vec![
        &BROKER_SPEC,
        &DAEMON_SPEC,
        &APPL_SPEC,
        &SUBAPPL_SPEC,
        &RSHPRIME_SPEC,
        &RBSTAT_SPEC,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every declared `ReqEdge` must name catalog variants: requests from
    /// `REQUEST_VARIANTS`, replies from `ALL_VARIANTS`.
    #[test]
    fn req_edges_stay_in_the_catalog() {
        for spec in protocol_specs() {
            let errors = spec.edge_catalog_errors();
            assert!(errors.is_empty(), "{}", errors.join("\n"));
        }
    }
}
