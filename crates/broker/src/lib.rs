//! # rb-broker — ResourceBroker
//!
//! The paper's primary contribution: a user-level, inter-job resource
//! manager that dynamically allocates machines among multiple competing
//! computations written in different parallel programming systems, without
//! modifying them.
//!
//! ## Architecture (two weakly coupled layers)
//!
//! * **Resource-management layer** — the network-wide [`Broker`] process
//!   plus one [`RbDaemon`] per machine. Daemons monitor CPU status,
//!   logged-in users, and keyboard/mouse (owner) activity, and report
//!   periodically; the broker decides which job can use which machine
//!   through a pluggable [`Policy`], and restarts failed daemons.
//! * **Application layer** — one [`Appl`] per submitted job plus a
//!   [`SubAppl`] on every machine the job spreads to, with [`RshPrime`]
//!   (`rsh'`) interposed on the job's `rsh` invocations. This layer can
//!   monitor and actively intervene in execution — redirecting spawns,
//!   failing them for the two-phase module protocol, and vacating machines
//!   with signal + grace period + kill.
//!
//! The two-level split is what lets everything run with user privileges
//! only — no root, no kernel changes, no modified programming systems.
//!
//! ## Growth paths
//!
//! * Calypso/PLinda/sequential jobs: **default redirect** of symbolic-host
//!   `rsh` to a machine chosen just in time.
//! * PVM/LAM jobs (`(module="pvm")`): the **two-phase external-module**
//!   protocol ([`modules`]) — fail the symbolic rsh, allocate, then coerce
//!   the job itself to re-issue a named rsh via a scripted console.
//!
//! See `DESIGN.md` at the repository root for the full system inventory
//! and the experiment index.

pub mod appl;
pub mod broker;
pub mod daemon;
pub mod modules;
pub mod policy;
pub mod protocol;
pub mod rshprime;
pub mod setup;
pub mod subappl;
pub mod tools;

pub use appl::{Appl, JobRequest, JobRun, RootScript};
pub use broker::{Broker, BrokerConfig};
pub use daemon::RbDaemon;
pub use modules::{ExternalModule, LamModule, ModuleRegistry, PvmModule};
pub use policy::{
    AllocContext, Decision, DefaultPolicy, FifoPolicy, JobView, MachineUse, MachineView, Policy,
    ReclaimRule,
};
pub use protocol::{
    protocol_specs, APPL_SPEC, BROKER_SPEC, DAEMON_SPEC, RBSTAT_SPEC, RSHPRIME_SPEC, SUBAPPL_SPEC,
};
pub use rshprime::{RshPrime, RshPrimeInstaller};
pub use setup::{
    build_cluster, build_standard_cluster, submit_job, BrokerPrograms, Cluster, ClusterOptions,
};
pub use subappl::SubAppl;
pub use tools::{query_status, status_sink, RbStat};
