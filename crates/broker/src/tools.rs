//! User-facing command-line tools (the paper's "users communicate with
//! ResourceBroker to query machine availability, to learn the status of
//! queued jobs, …").

use rb_proto::{BrokerMsg, ExitStatus, Payload, ProcId, TimerToken};
use rb_simcore::Duration;
use rb_simnet::{Behavior, Ctx};
use std::sync::{Arc, Mutex};

/// Where `rbstat` deposits the broker's answer for the caller to read.
///
/// The sink is created by the harness, handed to exactly one `RbStat`
/// proc, and read back only after that proc exits; `Arc<Mutex<..>>` (not
/// `Rc<RefCell<..>>`) because behaviors are `Send` — the proc rides its
/// machine's lane, which may run on a worker thread.
pub type StatusSink = Arc<Mutex<Option<Vec<String>>>>;

/// Make an empty sink.
pub fn status_sink() -> StatusSink {
    Arc::new(Mutex::new(None))
}

/// `rbstat` — query the broker for cluster and job status, print (deposit)
/// the reply, and exit. Fails after a timeout if the broker is unreachable.
pub struct RbStat {
    broker: ProcId,
    sink: StatusSink,
    timeout: Option<TimerToken>,
}

impl RbStat {
    pub fn new(broker: ProcId, sink: StatusSink) -> Self {
        RbStat {
            broker,
            sink,
            timeout: None,
        }
    }
}

impl Behavior for RbStat {
    fn name(&self) -> &'static str {
        "rbstat"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        ctx.send(
            self.broker,
            Payload::Broker(BrokerMsg::QueryCluster { reply_to: me }),
        );
        self.timeout = Some(ctx.set_timer(Duration::from_secs(10)));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        if let Payload::Broker(BrokerMsg::ClusterStatus { lines }) = msg {
            *self.sink.lock().unwrap() = Some(lines);
            if let Some(t) = self.timeout.take() {
                ctx.cancel_timer(t);
            }
            ctx.exit(ExitStatus::Success);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.timeout == Some(token) {
            ctx.trace("rbstat.timeout", "broker unreachable");
            ctx.exit(ExitStatus::Failure(1));
        }
    }
}

/// Convenience: run `rbstat` against a cluster and return the status lines.
pub fn query_status(cluster: &mut crate::setup::Cluster) -> Vec<String> {
    let sink = status_sink();
    let p = cluster.world.spawn_user(
        cluster.machines[0],
        Box::new(RbStat::new(cluster.broker, sink.clone())),
        rb_simnet::ProcEnv::system("user"),
    );
    let limit = rb_simcore::SimTime(cluster.world.now().as_micros() + 20_000_000);
    cluster.world.run_until_pred(limit, |w| !w.alive(p));
    let lines = sink.lock().unwrap().clone();
    lines.unwrap_or_default()
}
