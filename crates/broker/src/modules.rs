//! External modules — the plug-in programs that let the broker manage
//! systems (PVM, LAM) that refuse anonymous machines.
//!
//! When a user submits a job with `(module="xxx")`, ResourceBroker assumes
//! the existence of three external programs, `xxx_grow`, `xxx_shrink`, and
//! `xxx_halt`, to assist in growing, shrinking, and halting the job. In the
//! paper these are five-line shell scripts that drive a console; here each
//! module is a small object that spawns the corresponding scripted console
//! process. New programming systems are supported by registering a new
//! module — the broker itself is never recompiled.

use rb_proto::{CommandSpec, ConsoleCmd};
use rb_simcore::FxHashMap;
use rb_simnet::{Behavior, Ctx, ProgramFactory};

/// One external module triple (`grow` / `shrink` / `halt`).
///
/// Each method runs on the `appl`'s machine in the job user's environment
/// (so the spawned console can find the job's local master daemon via the
/// service registry), exactly as the real scripts run out of `$HOME`.
pub trait ExternalModule: Send {
    /// The module name users put in `(module="...")`.
    fn name(&self) -> &'static str;

    /// `xxx_grow <host>`: coerce the job to add `hostname`.
    fn grow(&self, ctx: &mut Ctx<'_>, hostname: &str);

    /// `xxx_shrink <host>`: coerce the job to release `hostname`.
    fn shrink(&self, ctx: &mut Ctx<'_>, hostname: &str);

    /// `xxx_halt`: shut the job down.
    fn halt(&self, ctx: &mut Ctx<'_>);
}

/// The factory used by modules to spawn their console processes; kept as a
/// helper so module implementations stay five-liners.
fn run_console(ctx: &mut Ctx<'_>, cmd: CommandSpec) {
    // The console runs as the job's user so that the per-user service
    // registry resolves to the job's own master daemon. The appl's
    // environment already carries that user.
    let factory = ConsoleFactory;
    if let Some(behavior) = factory.build(&cmd) {
        ctx.spawn_local(behavior);
    }
}

struct ConsoleFactory;

impl ProgramFactory for ConsoleFactory {
    fn build(&self, cmd: &CommandSpec) -> Option<Box<dyn Behavior>> {
        match cmd {
            CommandSpec::PvmConsole { script } => {
                Some(Box::new(rb_parsys::PvmConsole::new(script.clone())))
            }
            CommandSpec::LamConsole { script } => {
                Some(Box::new(rb_parsys::LamConsole::new(script.clone())))
            }
            _ => None,
        }
    }
}

/// `pvm_grow` / `pvm_shrink` / `pvm_halt` — the simulated analogue of the
/// paper's Figure 3 script:
///
/// ```text
/// #!/bin/bash
/// echo add $1 > $HOME/.pvmrc
/// echo quit >> $HOME/.pvmrc
/// pvm > /dev/null
/// rm $HOME/.pvmrc
/// ```
#[derive(Debug, Default)]
pub struct PvmModule;

impl ExternalModule for PvmModule {
    fn name(&self) -> &'static str {
        "pvm"
    }

    fn grow(&self, ctx: &mut Ctx<'_>, hostname: &str) {
        ctx.trace("module.pvm.grow", hostname.to_string());
        run_console(
            ctx,
            CommandSpec::PvmConsole {
                script: vec![ConsoleCmd::Add(hostname.to_string()), ConsoleCmd::Quit],
            },
        );
    }

    fn shrink(&self, ctx: &mut Ctx<'_>, hostname: &str) {
        ctx.trace("module.pvm.shrink", hostname.to_string());
        run_console(
            ctx,
            CommandSpec::PvmConsole {
                script: vec![ConsoleCmd::Delete(hostname.to_string()), ConsoleCmd::Quit],
            },
        );
    }

    fn halt(&self, ctx: &mut Ctx<'_>) {
        ctx.trace("module.pvm.halt", "");
        run_console(
            ctx,
            CommandSpec::PvmConsole {
                script: vec![ConsoleCmd::Halt],
            },
        );
    }
}

/// `lam_grow` / `lam_shrink` / `lam_halt` — a similar mechanism is used for
/// both PVM and LAM programs; the plug-in approach makes the design
/// extensible across programming systems.
#[derive(Debug, Default)]
pub struct LamModule;

impl ExternalModule for LamModule {
    fn name(&self) -> &'static str {
        "lam"
    }

    fn grow(&self, ctx: &mut Ctx<'_>, hostname: &str) {
        ctx.trace("module.lam.grow", hostname.to_string());
        run_console(
            ctx,
            CommandSpec::LamConsole {
                script: vec![ConsoleCmd::Add(hostname.to_string()), ConsoleCmd::Quit],
            },
        );
    }

    fn shrink(&self, ctx: &mut Ctx<'_>, hostname: &str) {
        ctx.trace("module.lam.shrink", hostname.to_string());
        run_console(
            ctx,
            CommandSpec::LamConsole {
                script: vec![ConsoleCmd::Delete(hostname.to_string()), ConsoleCmd::Quit],
            },
        );
    }

    fn halt(&self, ctx: &mut Ctx<'_>) {
        ctx.trace("module.lam.halt", "");
        run_console(
            ctx,
            CommandSpec::LamConsole {
                script: vec![ConsoleCmd::Halt],
            },
        );
    }
}

/// The module registry an `appl` consults when its job was submitted with
/// `(module="...")`. Shared, immutable after setup.
pub struct ModuleRegistry {
    modules: FxHashMap<&'static str, std::sync::Arc<dyn ExternalModule + Sync>>,
}

impl ModuleRegistry {
    /// Registry with the stock `pvm` and `lam` modules.
    pub fn standard() -> Self {
        let mut r = ModuleRegistry {
            modules: FxHashMap::default(),
        };
        r.register(std::sync::Arc::new(PvmModule));
        r.register(std::sync::Arc::new(LamModule));
        r
    }

    /// An empty registry (for testing "unknown module" handling).
    pub fn empty() -> Self {
        ModuleRegistry {
            modules: FxHashMap::default(),
        }
    }

    /// Install a module (future programming systems plug in here).
    pub fn register(&mut self, module: std::sync::Arc<dyn ExternalModule + Sync>) {
        self.modules.insert(module.name(), module);
    }

    pub fn get(&self, name: &str) -> Option<std::sync::Arc<dyn ExternalModule + Sync>> {
        self.modules.get(name).cloned()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.modules.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_pvm_and_lam() {
        let r = ModuleRegistry::standard();
        assert!(r.contains("pvm"));
        assert!(r.contains("lam"));
        assert!(!r.contains("condor"));
        assert_eq!(r.get("pvm").unwrap().name(), "pvm");
    }

    #[test]
    fn empty_registry_has_nothing() {
        assert!(!ModuleRegistry::empty().contains("pvm"));
    }
}
