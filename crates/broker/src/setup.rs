//! Convenience wiring: build a broker-managed cluster world in one call.
//!
//! This is the "site installation" step: install the program factories
//! (base programs, parallel systems, broker agents), replace the
//! system-wide `rsh` with `rsh'`, start the broker, and let it spawn its
//! daemons.

use crate::appl::{Appl, JobRequest};
use crate::broker::{Broker, BrokerConfig};
use crate::daemon::RbDaemon;
use crate::modules::ModuleRegistry;
use crate::policy::Policy;
use crate::rshprime::RshPrimeInstaller;
use crate::subappl::SubAppl;
use rb_proto::{CommandSpec, ExitStatus, MachineAttrs, MachineId, ProcId};
use rb_simcore::{QueueKind, SimTime};
use rb_simnet::{
    BasePrograms, Behavior, CostModel, FactoryChain, ProcEnv, ProgramFactory, RshBinding, World,
    WorldBuilder,
};
use std::sync::Arc;

/// Factory for the broker's own remotely-spawned agents.
pub struct BrokerPrograms;

impl ProgramFactory for BrokerPrograms {
    fn build(&self, cmd: &CommandSpec) -> Option<Box<dyn Behavior>> {
        match cmd {
            CommandSpec::SubAppl { appl, job, grow } => {
                Some(Box::new(SubAppl::new(*appl, *job, *grow)))
            }
            CommandSpec::RbDaemon { broker } => Some(Box::new(RbDaemon::new(*broker))),
            _ => None,
        }
    }
}

/// Options for [`build_cluster`].
pub struct ClusterOptions {
    pub seed: u64,
    pub cost: CostModel,
    pub trace: bool,
    /// Stream the trace to this writer instead of holding it in memory,
    /// keeping only a tail of the given size resident — the flight
    /// recorder for runs too large for a full in-memory trace (see
    /// [`rb_simnet::WorldBuilder::trace_stream`]). Implies tracing on.
    pub trace_stream: Option<(Box<dyn std::io::Write + Send>, usize)>,
    /// Self-profile the kernel (per-behavior / per-message-kind dispatch
    /// wall time — see [`rb_simnet::WorldBuilder::profile`]).
    pub profile: bool,
    /// Sample kernel/cluster gauges into the metrics registry at this
    /// interval (`None` disables metrics entirely — zero cost).
    pub metrics_interval: Option<rb_simcore::Duration>,
    /// Event-queue backend for the kernel (both replay bit-identically).
    pub scheduler: QueueKind,
    /// Event shards for the kernel (1 = serial; any count replays
    /// bit-identically — see [`rb_simnet::WorldBuilder::shards`]).
    pub shards: usize,
    /// Worker threads dispatching the shards in parallel (1 = the
    /// coordinator dispatches every lane inline; byte-identical either
    /// way — see [`rb_simnet::WorldBuilder::threads`]).
    pub threads: usize,
    /// Record happens-before metadata (`shard.ev` / `shard.window`) into
    /// the trace for the `rbrace hb` checker. Only effective on a
    /// sharded, traced world — see [`rb_simnet::WorldBuilder::hb_trace`].
    pub hb_trace: bool,
    /// Machines (defaults to `n` public Linux boxes when using
    /// [`build_standard_cluster`]).
    pub machines: Vec<MachineAttrs>,
    pub policy: Box<dyn Policy>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            seed: 1,
            cost: CostModel::default(),
            trace: true,
            trace_stream: None,
            profile: false,
            metrics_interval: None,
            scheduler: QueueKind::default(),
            shards: 1,
            threads: 1,
            hb_trace: false,
            machines: Vec::new(),
            policy: Box::new(crate::policy::DefaultPolicy::default()),
        }
    }
}

/// A broker-managed cluster ready for job submissions.
pub struct Cluster {
    pub world: World,
    pub broker: ProcId,
    pub machines: Vec<MachineId>,
    pub modules: Arc<ModuleRegistry>,
}

/// Build a cluster of `n` standard public Linux machines managed by a
/// broker with the default policy.
pub fn build_standard_cluster(n: usize, seed: u64) -> Cluster {
    let mut opts = ClusterOptions {
        seed,
        ..Default::default()
    };
    opts.machines = (0..n)
        .map(|i| MachineAttrs::public_linux(format!("n{i:02}")))
        .collect();
    build_cluster(opts)
}

/// Build a cluster from explicit options. The broker runs on the first
/// machine and spawns a daemon everywhere.
pub fn build_cluster(opts: ClusterOptions) -> Cluster {
    assert!(!opts.machines.is_empty(), "need at least one machine");
    let mut b = WorldBuilder::new()
        .seed(opts.seed)
        .cost(opts.cost)
        .trace(opts.trace)
        .profile(opts.profile)
        .scheduler(opts.scheduler)
        .shards(opts.shards)
        .threads(opts.threads)
        .hb_trace(opts.hb_trace)
        .default_remote_binding(RshBinding::Broker)
        .factory(
            FactoryChain::new()
                .with(BasePrograms)
                .with(rb_parsys::ParsysPrograms)
                .with(BrokerPrograms),
        )
        .rsh_prime(RshPrimeInstaller);
    if let Some((out, tail_cap)) = opts.trace_stream {
        b = b.trace_stream(out, tail_cap);
    }
    if let Some(interval) = opts.metrics_interval {
        b = b.metrics(interval);
    }
    let machines: Vec<MachineId> = opts
        .machines
        .iter()
        .cloned()
        .map(|m| b.machine(m))
        .collect();
    let mut world = b.build();
    let broker = world.spawn_user(
        machines[0],
        Box::new(Broker::new(BrokerConfig {
            policy: opts.policy,
            spawn_daemons: true,
            queue_batch_jobs: true,
        })),
        ProcEnv::system("rb"),
    );
    Cluster {
        world,
        broker,
        machines,
        modules: Arc::new(ModuleRegistry::standard()),
    }
}

/// Submit a job from `machine` (the user's workstation): starts the `appl`
/// process, which registers with the broker and launches the job. Returns
/// the `appl`'s process id. Free function so scenario scripts can submit
/// from scheduled harness closures.
pub fn submit_job(
    world: &mut World,
    machine: MachineId,
    broker: ProcId,
    modules: &Arc<ModuleRegistry>,
    req: JobRequest,
) -> ProcId {
    let user = req.user.clone();
    let appl = Appl::new(broker, req, modules.clone());
    world.spawn_user(
        machine,
        Box::new(appl),
        ProcEnv {
            job: None,
            appl: None,
            rsh: RshBinding::Standard,
            user: user.into(),
            system: true,
        },
    )
}

impl Cluster {
    /// Let the broker boot and its daemons report once.
    pub fn settle(&mut self) {
        let t = self.world.now() + rb_simcore::Duration::from_secs(1);
        self.world.run_until(t);
    }

    /// See [`submit_job`].
    pub fn submit(&mut self, machine: MachineId, req: JobRequest) -> ProcId {
        submit_job(
            &mut self.world,
            machine,
            self.broker,
            &self.modules.clone(),
            req,
        )
    }

    /// Run until the given `appl` exits (or `limit`); returns its status.
    pub fn await_appl(&mut self, appl: ProcId, limit: SimTime) -> Option<ExitStatus> {
        self.world.run_until_pred(limit, |w| !w.alive(appl));
        self.world.exit_status(appl)
    }
}
