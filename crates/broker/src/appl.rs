//! The `appl` process — the application layer's per-job agent.
//!
//! A user who wants ResourceBroker's services starts an `appl` to submit
//! the job. The `appl` registers the job (with its RSL request) at the
//! broker, launches the job's root process with `rsh'` on its PATH, and
//! then brokers between the job and the resource-management layer:
//!
//! * **default path** (Calypso, PLinda, sequential jobs): an intercepted
//!   `rsh` with a symbolic host is *redirected* — the `appl` asks the
//!   broker for a machine, spawns a sub-`appl` there over the standard
//!   `rsh`, hands it the original command, and finally tells `rsh'` to
//!   exit successfully. The job never notices it runs on a machine chosen
//!   at runtime.
//! * **module path** (PVM, LAM — submitted with `(module="...")`): Phase I
//!   fails the intercepted `rsh` (the job tolerates the failed add) while
//!   the machine is allocated; the external module then coerces the job to
//!   re-issue the `rsh` with the real host name, and Phase II proceeds
//!   like the default path on that named machine.
//! * **reallocation**: on `ReleaseMachine`, the sub-`appl` signals the
//!   job's process (or, for module jobs, the module's `shrink` script
//!   coerces the job first), and the machine is reported free once vacated.

use crate::modules::ModuleRegistry;
use rb_proto::{
    ApplMsg, BrokerMsg, CommandSpec, ExitStatus, GrowId, HostSpec, JobId, MachineId, Payload,
    ProcId, RshError, RshHandle, SymbolicHost, TimerToken,
};
use rb_simcore::{FxHashMap, SimTime, SpanId};
use rb_simnet::{Behavior, Ctx, ProcEnv, RshBinding};
use std::sync::Arc;

/// Factory producing a fresh job-root behavior (what a `start_script`
/// runs each time it is invoked).
pub type RootScript = Box<dyn FnMut() -> Box<dyn Behavior> + Send>;

/// What the submitted job runs.
pub enum JobRun {
    /// Execute one command on a (possibly symbolic) remote host and exit
    /// with its status — remote execution of sequential programs, the
    /// paper's Table 1/2 usage.
    Remote { host: String, cmd: CommandSpec },
    /// Start this behavior locally as the job's root process (a parallel
    /// system's master / console / tuple-space server).
    Root(Box<dyn Behavior>),
    /// A *restartable* root: the RSL's `(start_script="...")` names a
    /// script the `appl` can re-run, so if the root process dies abnormally
    /// the `appl` starts it again (fault-tolerant runtimes like PLinda's
    /// persistent server then recover from their checkpoints).
    Script { make: RootScript, max_restarts: u32 },
}

/// A job submission.
pub struct JobRequest {
    /// RSL request, e.g. `+(count>=4)(arch="i686")(module="pvm")`.
    pub rsl: String,
    pub user: String,
    pub run: JobRun,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GrowKind {
    /// Default redirect (symbolic host, no module).
    Default,
    /// Module phase I: allocation in progress; the job saw a failed add.
    ModuleWait,
    /// Module phase II / named proceed: sub-appl chain on a named machine.
    Proceed,
    /// The job's single remote command (sequential execution).
    Remote,
}

struct Grow {
    kind: GrowKind,
    /// The rsh' process awaiting an outcome, if any.
    rshp: Option<ProcId>,
    cmd: Option<CommandSpec>,
    machine: Option<MachineId>,
    hostname: Option<String>,
    subappl: Option<ProcId>,
    detached: bool,
    /// Broker asked for this machine back.
    releasing: bool,
    /// Allocation retries left after a machine turned out to be dead.
    retries: u32,
    /// The grow's `alloc` span — one allocation end to end, parented
    /// under the intercepted `rsh.request` when there is one.
    span: SpanId,
    /// `alloc.grant` — open while the granted machine is held; closed
    /// when the machine goes back to the broker.
    grant_span: SpanId,
    /// `alloc.spawn` — the sub-appl chain; closed at `SubApplReady`.
    spawn_span: SpanId,
    /// When the allocation request left for the broker (latency metric).
    requested_at: SimTime,
}

impl Grow {
    fn new(kind: GrowKind) -> Self {
        Grow {
            kind,
            rshp: None,
            cmd: None,
            machine: None,
            hostname: None,
            subappl: None,
            detached: false,
            releasing: false,
            retries: 2,
            span: SpanId::NONE,
            grant_span: SpanId::NONE,
            spawn_span: SpanId::NONE,
            requested_at: SimTime::ZERO,
        }
    }
}

/// The `appl` behavior.
pub struct Appl {
    broker: ProcId,
    rsl: String,
    user: std::sync::Arc<str>,
    run: Option<JobRun>,
    modules: Arc<ModuleRegistry>,
    spec: Option<rb_rsl::JobSpec>,
    job: Option<JobId>,
    root: Option<ProcId>,
    /// Restart factory + remaining budget, for `JobRun::Script` jobs.
    restart: Option<(RootScript, u32)>,
    grows: FxHashMap<GrowId, Grow>,
    next_grow: u64,
    /// standard-rsh handles (sub-appl spawns) -> grow.
    by_handle: FxHashMap<RshHandle, GrowId>,
    /// module grows awaiting the job's second rsh, keyed by host name.
    pending_named: FxHashMap<String, GrowId>,
    /// machines currently held, for release routing.
    by_machine: FxHashMap<MachineId, GrowId>,
    /// module-shrink backstop timers.
    shrink_timers: FxHashMap<TimerToken, MachineId>,
    /// Hard deadline per release: if the sub-appl never reports back (its
    /// machine may have crashed), the machine is reported freed anyway so
    /// the broker's pool is never wedged on a dead box.
    release_deadlines: FxHashMap<TimerToken, MachineId>,
    /// timers bounding how long a module grant may wait for the job's
    /// second (named) rsh before the machine is handed back.
    named_timers: FxHashMap<TimerToken, String>,
    /// Module grows run one at a time per job: the real `xxx_grow` scripts
    /// share a single `$HOME/.pvmrc`, so concurrent runs would clobber it.
    module_queue: std::collections::VecDeque<(GrowId, String)>,
    module_active: Option<GrowId>,
    /// After a grow attempt fails (e.g. the job's runtime refused the
    /// machine), broker offers are ignored until this instant so a job
    /// that cannot actually use machines does not thrash the offer loop.
    offer_cooldown_until: Option<rb_simcore::SimTime>,
    done: bool,
}

impl Appl {
    pub fn new(broker: ProcId, req: JobRequest, modules: Arc<ModuleRegistry>) -> Self {
        Appl {
            broker,
            rsl: req.rsl,
            user: req.user.into(),
            run: Some(req.run),
            modules,
            spec: None,
            job: None,
            root: None,
            restart: None,
            grows: FxHashMap::default(),
            next_grow: 1,
            by_handle: FxHashMap::default(),
            pending_named: FxHashMap::default(),
            by_machine: FxHashMap::default(),
            shrink_timers: FxHashMap::default(),
            release_deadlines: FxHashMap::default(),
            named_timers: FxHashMap::default(),
            module_queue: std::collections::VecDeque::new(),
            module_active: None,
            offer_cooldown_until: None,
            done: false,
        }
    }

    fn fresh_grow(&mut self, ctx: &mut Ctx<'_>, kind: GrowKind, parent: SpanId) -> GrowId {
        let id = GrowId(self.next_grow);
        self.next_grow += 1;
        let mut g = Grow::new(kind);
        if let Some(job) = self.job {
            g.span = ctx.open_span(
                parent,
                "alloc",
                format_args!("{id} job={job} kind={kind:?}"),
            );
        }
        self.grows.insert(id, g);
        id
    }

    /// Close every span the grow still holds and drop it from the table.
    fn end_grow(&mut self, ctx: &mut Ctx<'_>, grow: GrowId, outcome: &str) {
        if let Some(g) = self.grows.remove(&grow) {
            ctx.close_span(g.spawn_span, "alloc.spawn", outcome);
            ctx.close_span(g.grant_span, "alloc.grant", outcome);
            ctx.close_span(g.span, "alloc", outcome);
        }
    }

    fn module(&self) -> Option<Arc<dyn crate::modules::ExternalModule + Sync>> {
        self.spec
            .as_ref()
            .and_then(|s| s.module.as_deref())
            .and_then(|name| self.modules.get(name))
    }

    fn request_alloc(&mut self, ctx: &mut Ctx<'_>, grow: GrowId, constraint: SymbolicHost) {
        let job = self.job.expect("registered");
        let span = match self.grows.get_mut(&grow) {
            Some(g) => {
                g.requested_at = ctx.now();
                g.span
            }
            None => SpanId::NONE,
        };
        ctx.metric_inc("appl.alloc.requests", job);
        ctx.send(
            self.broker,
            Payload::Broker(BrokerMsg::AllocRequest {
                job,
                grow,
                constraint,
                span,
            }),
        );
    }

    /// Launch the sub-appl chain on a named machine for `grow`.
    fn start_subappl(&mut self, ctx: &mut Ctx<'_>, grow: GrowId, hostname: &str) {
        let job = self.job.expect("registered");
        let me = ctx.me();
        let handle = ctx.rsh_standard(
            hostname,
            CommandSpec::SubAppl {
                appl: me,
                job,
                grow,
            },
        );
        self.by_handle.insert(handle, grow);
        if let Some(g) = self.grows.get_mut(&grow) {
            g.hostname = Some(hostname.to_string());
            let parent = if g.grant_span != SpanId::NONE {
                g.grant_span
            } else {
                g.span
            };
            g.spawn_span = ctx.open_span(
                parent,
                "alloc.spawn",
                format_args!("{grow} job={job} {hostname}"),
            );
        }
    }

    /// Run the next queued module grow, if none is active.
    fn pump_module_grows(&mut self, ctx: &mut Ctx<'_>) {
        if self.module_active.is_some() {
            return;
        }
        let Some((grow, hostname)) = self.module_queue.pop_front() else {
            return;
        };
        if !self.grows.contains_key(&grow) {
            return self.pump_module_grows(ctx);
        }
        self.module_active = Some(grow);
        self.pending_named.insert(hostname.clone(), grow);
        let token = ctx.set_timer(rb_simcore::Duration::from_secs(20));
        self.named_timers.insert(token, hostname.clone());
        if let Some(module) = self.module() {
            module.grow(ctx, &hostname);
        }
    }

    /// A module grow reached a terminal state; start the next one.
    fn module_grow_done(&mut self, ctx: &mut Ctx<'_>, grow: GrowId) {
        if self.module_active == Some(grow) {
            self.module_active = None;
            self.pump_module_grows(ctx);
        }
    }

    fn reply_rshp(&mut self, ctx: &mut Ctx<'_>, grow: GrowId, status: ExitStatus) {
        if let Some(g) = self.grows.get_mut(&grow) {
            if let Some(rshp) = g.rshp.take() {
                ctx.send(rshp, Payload::Appl(ApplMsg::RshOutcome { status }));
            }
        }
    }

    fn free_machine(&mut self, ctx: &mut Ctx<'_>, grow: GrowId) {
        let Some(g) = self.grows.get(&grow) else {
            return;
        };
        let (Some(machine), Some(job)) = (g.machine, self.job) else {
            return;
        };
        self.by_machine.remove(&machine);
        if let Some(g) = self.grows.get_mut(&grow) {
            g.machine = None;
            let grant = std::mem::replace(&mut g.grant_span, SpanId::NONE);
            ctx.close_span(grant, "alloc.grant", "freed");
        }
        ctx.send(
            self.broker,
            Payload::Broker(BrokerMsg::MachineFreed { job, machine }),
        );
    }

    fn spawn_root(&mut self, ctx: &mut Ctx<'_>, job: JobId, behavior: Box<dyn Behavior>) -> ProcId {
        let me = ctx.me();
        let env = ProcEnv {
            job: Some(job),
            appl: Some(me),
            rsh: RshBinding::Broker,
            user: self.user.clone(),
            system: false,
        };
        let root = ctx.spawn_local_with_env(behavior, env);
        self.root = Some(root);
        root
    }

    fn finish_job(&mut self, ctx: &mut Ctx<'_>, status: ExitStatus) {
        if self.done {
            return;
        }
        self.done = true;
        // Tear down all sub-appls (they kill their children), in a
        // deterministic order.
        let mut subs: Vec<(GrowId, ProcId)> = self
            .grows
            .iter()
            .filter_map(|(&g, grow)| grow.subappl.map(|s| (g, s)))
            .collect();
        subs.sort();
        for (_, sub) in subs {
            ctx.send(sub, Payload::Appl(ApplMsg::Shutdown));
        }
        // Sweep-close every span the job still holds open, so each
        // allocation tree is complete by the time the job is done.
        let mut open: Vec<GrowId> = self.grows.keys().copied().collect();
        open.sort();
        for grow in open {
            self.end_grow(ctx, grow, "job-done");
        }
        if let Some(job) = self.job {
            ctx.send(self.broker, Payload::Broker(BrokerMsg::JobDone { job }));
        }
        ctx.trace("appl.done", format_args!("{status}"));
        ctx.exit(status);
    }

    /// Handle an intercepted rsh from an `rsh'` shim.
    fn on_intercepted(
        &mut self,
        ctx: &mut Ctx<'_>,
        rshp: ProcId,
        host: HostSpec,
        cmd: CommandSpec,
        span: SpanId,
    ) {
        if self.done || self.job.is_none() {
            ctx.send(
                rshp,
                Payload::Appl(ApplMsg::RshOutcome {
                    status: ExitStatus::Failure(1),
                }),
            );
            return;
        }
        match host {
            HostSpec::Symbolic(sym) => {
                if let Some(_module) = self.module() {
                    // ---- module path, phase I ----
                    // The job's rsh fails now; the allocation proceeds in
                    // the background and the module will coerce a second,
                    // named rsh.
                    ctx.trace("appl.module.phase1", format_args!("{sym} {}", cmd.name()));
                    ctx.send(
                        rshp,
                        Payload::Appl(ApplMsg::RshOutcome {
                            status: ExitStatus::Failure(1),
                        }),
                    );
                    let grow = self.fresh_grow(ctx, GrowKind::ModuleWait, span);
                    self.request_alloc(ctx, grow, sym);
                } else {
                    // ---- default path: redirect ----
                    ctx.trace(
                        "appl.default.redirect",
                        format_args!("{sym} {}", cmd.name()),
                    );
                    let grow = self.fresh_grow(ctx, GrowKind::Default, span);
                    if let Some(g) = self.grows.get_mut(&grow) {
                        g.rshp = Some(rshp);
                        g.cmd = Some(cmd);
                    }
                    self.request_alloc(ctx, grow, sym);
                }
            }
            HostSpec::Real(hostname) => {
                if let Some(&grow) = self.pending_named.get(&hostname) {
                    // ---- module path, phase II ----
                    self.pending_named.remove(&hostname);
                    ctx.trace("appl.module.phase2", hostname.clone());
                    if let Some(g) = self.grows.get_mut(&grow) {
                        g.kind = GrowKind::Proceed;
                        g.rshp = Some(rshp);
                        g.cmd = Some(cmd);
                    }
                    self.start_subappl(ctx, grow, &hostname);
                } else {
                    // Explicitly named machine outside broker control:
                    // allowed to proceed (near-zero overhead).
                    ctx.trace("appl.passthrough", hostname);
                    ctx.send(rshp, Payload::Appl(ApplMsg::RshProceedStandard));
                }
            }
        }
    }
}

impl Behavior for Appl {
    fn name(&self) -> &'static str {
        "appl"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Parse the request; reject bad RSL or unknown modules locally.
        let spec = match rb_rsl::parse(&self.rsl)
            .map_err(|e| e.to_string())
            .and_then(|r| rb_rsl::job_spec(&r).map_err(|e| e.to_string()))
        {
            Ok(spec) => spec,
            Err(err) => {
                ctx.trace("appl.bad-rsl", err);
                ctx.exit(ExitStatus::Failure(2));
                return;
            }
        };
        if let Some(name) = spec.module.as_deref() {
            if !self.modules.contains(name) {
                ctx.trace("appl.module.unknown", name.to_string());
                ctx.exit(ExitStatus::Failure(2));
                return;
            }
        }
        self.spec = Some(spec);
        let me = ctx.me();
        let startup = ctx.cost().appl_startup;
        ctx.trace("appl.submit", self.rsl.clone());
        let home = ctx.machine();
        ctx.send_after(
            self.broker,
            Payload::Broker(BrokerMsg::RegisterJob {
                appl: me,
                rsl: self.rsl.clone(),
                user: self.user.to_string(),
                home,
            }),
            startup,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Payload) {
        match msg {
            // ---------------- broker ----------------
            Payload::Broker(BrokerMsg::JobAccepted { job }) => {
                self.job = Some(job);
                ctx.trace("appl.job", format_args!("{job}"));
                match self.run.take() {
                    Some(JobRun::Remote { host, cmd }) => {
                        let grow = self.fresh_grow(ctx, GrowKind::Remote, SpanId::NONE);
                        if let Some(g) = self.grows.get_mut(&grow) {
                            g.cmd = Some(cmd);
                        }
                        match HostSpec::classify(&host) {
                            HostSpec::Symbolic(sym) => self.request_alloc(ctx, grow, sym),
                            HostSpec::Real(hostname) => {
                                if let Some(g) = self.grows.get_mut(&grow) {
                                    g.kind = GrowKind::Proceed;
                                    g.cmd = g.cmd.take();
                                }
                                // Named machine: still run through the
                                // sub-appl for monitoring, but no broker
                                // round-trip.
                                self.grows.get_mut(&grow).expect("present").kind = GrowKind::Remote;
                                self.start_subappl(ctx, grow, &hostname);
                            }
                        }
                    }
                    Some(JobRun::Root(behavior)) => {
                        let root = self.spawn_root(ctx, job, behavior);
                        ctx.trace("appl.root", format_args!("{root}"));
                    }
                    Some(JobRun::Script {
                        mut make,
                        max_restarts,
                    }) => {
                        let behavior = make();
                        self.restart = Some((make, max_restarts));
                        let root = self.spawn_root(ctx, job, behavior);
                        ctx.trace("appl.root", format_args!("{root} (restartable)"));
                    }
                    None => {}
                }
            }
            Payload::Broker(BrokerMsg::JobRejected { reason }) => {
                ctx.trace("appl.rejected", reason);
                ctx.exit(ExitStatus::Failure(2));
            }
            Payload::Broker(BrokerMsg::AllocGrant {
                grow,
                machine,
                hostname,
                span,
            }) => {
                let now = ctx.now();
                let job = self.job;
                let Some(g) = self.grows.get_mut(&grow) else {
                    // Grow abandoned: hand the machine straight back.
                    if let Some(job) = self.job {
                        ctx.send(
                            self.broker,
                            Payload::Broker(BrokerMsg::MachineFreed { job, machine }),
                        );
                    }
                    return;
                };
                g.machine = Some(machine);
                // The grant leg of the allocation tree: parented under
                // the broker's decide span when one rode the message.
                let parent = if span != SpanId::NONE { span } else { g.span };
                if let Some(job) = job {
                    g.grant_span = ctx.open_span(
                        parent,
                        "alloc.grant",
                        format_args!("{grow} job={job} {hostname}"),
                    );
                    ctx.metric_inc("appl.alloc.grants", job);
                    ctx.metric_observe(
                        "alloc.latency_s",
                        job,
                        now.since(g.requested_at).as_secs_f64(),
                    );
                }
                self.by_machine.insert(machine, grow);
                // The appl's view of the broker's allocation order: the
                // linearizability check in rb-model compares these
                // per-host observations against the broker's own grant
                // sequence.
                if let Some(job) = self.job {
                    ctx.trace("appl.grant.seen", format_args!("{hostname} -> {job}"));
                }
                let kind = self.grows[&grow].kind;
                match kind {
                    GrowKind::ModuleWait => {
                        // Phase II trigger: the external module coerces the
                        // job into a named rsh to `hostname`. One module
                        // grow runs at a time per job.
                        if let Some(g) = self.grows.get_mut(&grow) {
                            g.hostname = Some(hostname.clone());
                        }
                        self.module_queue.push_back((grow, hostname));
                        self.pump_module_grows(ctx);
                    }
                    _ => {
                        self.start_subappl(ctx, grow, &hostname);
                    }
                }
            }
            Payload::Broker(BrokerMsg::AllocDenied { grow, reason }) => {
                ctx.trace("appl.denied", reason);
                if let Some(job) = self.job {
                    ctx.metric_inc("appl.alloc.denied", job);
                }
                let kind = self.grows.get(&grow).map(|g| g.kind);
                self.reply_rshp(ctx, grow, ExitStatus::Failure(1));
                self.end_grow(ctx, grow, "denied");
                if kind == Some(GrowKind::Remote) {
                    // The job's only command cannot run.
                    self.finish_job(ctx, ExitStatus::Failure(1));
                }
            }
            Payload::Broker(BrokerMsg::ReleaseMachine { machine }) => {
                let Some(&grow) = self.by_machine.get(&machine) else {
                    // Nothing of ours there (already gone): report free.
                    if let Some(job) = self.job {
                        ctx.send(
                            self.broker,
                            Payload::Broker(BrokerMsg::MachineFreed { job, machine }),
                        );
                    }
                    return;
                };
                let hostname = self
                    .grows
                    .get(&grow)
                    .and_then(|g| g.hostname.clone())
                    .unwrap_or_default();
                ctx.trace("appl.release", hostname.clone());
                // Absolute backstop for the whole release (covers crashed
                // machines and dead sub-appls).
                let deadline = ctx.set_timer(rb_simcore::Duration::from_secs(15));
                self.release_deadlines.insert(deadline, machine);
                if let Some(module) = self.module() {
                    // Coerce the job to give the host up; the sub-appl's
                    // signal path is armed as a backstop.
                    module.shrink(ctx, &hostname);
                    if let Some(g) = self.grows.get_mut(&grow) {
                        g.releasing = true;
                    }
                    let grace = ctx.cost().release_grace;
                    let token = ctx.set_timer(rb_simcore::Duration(3 * grace.as_micros()));
                    self.shrink_timers.insert(token, machine);
                } else {
                    if let Some(g) = self.grows.get_mut(&grow) {
                        g.releasing = true;
                        if let Some(sub) = g.subappl {
                            ctx.send(sub, Payload::Appl(ApplMsg::ReleaseChild));
                        }
                    }
                }
            }
            Payload::Broker(BrokerMsg::GrowOffer { machine, hostname }) => {
                let _ = machine;
                if self.done {
                    return;
                }
                if let Some(until) = self.offer_cooldown_until {
                    if ctx.now() < until {
                        ctx.trace("appl.offer.cooldown", hostname);
                        return;
                    }
                }
                ctx.trace("appl.offer", hostname);
                if self.module().is_some() {
                    // Ask for the reserved machine through the normal
                    // allocation path, then phase II as usual.
                    let grow = self.fresh_grow(ctx, GrowKind::ModuleWait, SpanId::NONE);
                    self.request_alloc(ctx, grow, SymbolicHost::Any);
                } else if let Some(root) = self.root {
                    // Nudge the adaptive job; its own grow request follows.
                    ctx.send(root, Payload::Ctl(rb_proto::CtlMsg::GrowHint { count: 1 }));
                }
            }

            // ---------------- rsh' ----------------
            Payload::Appl(ApplMsg::Intercepted {
                origin: _,
                host,
                cmd,
                span,
            }) => {
                self.on_intercepted(ctx, from, host, cmd, span);
            }

            // ---------------- sub-appls ----------------
            Payload::Appl(ApplMsg::SubApplReady { grow, machine }) => {
                let Some(g) = self.grows.get_mut(&grow) else {
                    ctx.send(from, Payload::Appl(ApplMsg::Shutdown));
                    return;
                };
                g.subappl = Some(from);
                g.machine.get_or_insert(machine);
                // The sub-appl chain is up: close the spawn leg; the
                // program's exec span parents under it.
                let spawn = std::mem::replace(&mut g.spawn_span, SpanId::NONE);
                let exec_parent = if spawn != SpanId::NONE { spawn } else { g.span };
                ctx.close_span(spawn, "alloc.spawn", "ready");
                self.by_machine.insert(machine, grow);
                let cmd = self.grows[&grow].cmd.clone();
                if let Some(cmd) = cmd {
                    ctx.send(
                        from,
                        Payload::Appl(ApplMsg::Program {
                            grow,
                            cmd,
                            span: exec_parent,
                        }),
                    );
                }
            }
            Payload::Appl(ApplMsg::ChildStarted { .. }) => {}
            Payload::Appl(ApplMsg::ChildDetached { grow, .. }) => {
                if let Some(g) = self.grows.get_mut(&grow) {
                    g.detached = true;
                }
                // A daemon-style program is up: the intercepted rsh (or the
                // module's named rsh) succeeded.
                self.reply_rshp(ctx, grow, ExitStatus::Success);
                self.module_grow_done(ctx, grow);
            }
            Payload::Appl(ApplMsg::ChildExited { grow, status }) => {
                let Some(g) = self.grows.get(&grow) else {
                    return;
                };
                if g.releasing {
                    // The module's shrink coerced the job off the machine
                    // (the sub-appl only reports ChildExited — not Released
                    // — when it was never put into releasing mode itself).
                    // The vacated machine goes back now; cancel the signal
                    // backstop.
                    let machine = g.machine;
                    self.shrink_timers.retain(|_, m| Some(*m) != machine);
                    ctx.trace("appl.shrink.done", format_args!("{grow}"));
                    self.free_machine(ctx, grow);
                    self.end_grow(ctx, grow, "released");
                    self.module_grow_done(ctx, grow);
                    return;
                }
                let kind = g.kind;
                if kind == GrowKind::Default && !status.is_success() {
                    // The job's runtime rejected or crashed on the machine
                    // we redirected it to: back off from further offers.
                    self.offer_cooldown_until =
                        Some(ctx.now() + rb_simcore::Duration::from_secs(30));
                }
                self.reply_rshp(ctx, grow, status);
                self.free_machine(ctx, grow);
                self.end_grow(
                    ctx,
                    grow,
                    if status.is_success() {
                        "done"
                    } else {
                        "failed"
                    },
                );
                self.module_grow_done(ctx, grow);
                if kind == GrowKind::Remote {
                    // Sequential remote execution: job over.
                    self.finish_job(ctx, status);
                }
            }
            Payload::Appl(ApplMsg::Released { grow, machine }) => {
                self.shrink_timers.retain(|_, &mut m| m != machine);
                self.release_deadlines.retain(|_, &mut m| m != machine);
                self.reply_rshp(ctx, grow, ExitStatus::Failure(1));
                self.free_machine(ctx, grow);
                self.end_grow(ctx, grow, "released");
                self.module_grow_done(ctx, grow);
            }
            _ => {}
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, RshError>,
    ) {
        // Completion of the standard rsh that spawns sub-appls. Success is
        // driven by SubApplReady; only failures need handling.
        let Some(grow) = self.by_handle.remove(&handle) else {
            return;
        };
        if matches!(result, Ok(ExitStatus::Success)) {
            return;
        }
        ctx.trace("appl.subappl.failed", format_args!("{grow}: {result:?}"));
        let kind = self.grows.get(&grow).map(|g| g.kind);
        let machine = self.grows.get(&grow).and_then(|g| g.machine);
        self.free_machine(ctx, grow);
        if let Some(g) = self.grows.get_mut(&grow) {
            let spawn = std::mem::replace(&mut g.spawn_span, SpanId::NONE);
            ctx.close_span(spawn, "alloc.spawn", "rsh-failed");
        }
        // The granted machine was unreachable (it may have crashed between
        // the daemon's last report and our rsh): for a batch job, retry the
        // allocation rather than failing the user's command outright. Only
        // broker-granted machines are retried — a host the *user* named
        // explicitly (machine unset) fails straight back to them.
        if kind == Some(GrowKind::Remote) && machine.is_some() {
            let can_retry = self
                .grows
                .get_mut(&grow)
                .map(|g| {
                    if g.retries > 0 {
                        g.retries -= 1;
                        true
                    } else {
                        false
                    }
                })
                .unwrap_or(false);
            if can_retry {
                // Tell the broker the machine did not answer, so the retry
                // is not granted the same dead box.
                if let Some(machine) = machine {
                    ctx.send(
                        self.broker,
                        Payload::Broker(BrokerMsg::MachineUnreachable { machine }),
                    );
                }
                ctx.trace("appl.alloc.retry", format_args!("{grow}"));
                self.request_alloc(ctx, grow, rb_proto::SymbolicHost::Any);
                return;
            }
        }
        self.reply_rshp(ctx, grow, ExitStatus::Failure(1));
        self.end_grow(ctx, grow, "spawn-failed");
        self.module_grow_done(ctx, grow);
        if kind == Some(GrowKind::Remote) {
            self.finish_job(ctx, ExitStatus::Failure(1));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        // Release deadline: the sub-appl (or its whole machine) is gone;
        // declare the machine freed so the broker can move on.
        if let Some(machine) = self.release_deadlines.remove(&token) {
            if let Some(&grow) = self.by_machine.get(&machine) {
                ctx.trace("appl.release.timeout", format_args!("{machine}"));
                self.free_machine(ctx, grow);
                self.end_grow(ctx, grow, "release-timeout");
                self.module_grow_done(ctx, grow);
            }
            return;
        }

        // Module-grow backstop: the coerced second rsh never came; give
        // the machine back so it is not stranded.
        if let Some(hostname) = self.named_timers.remove(&token) {
            if let Some(grow) = self.pending_named.remove(&hostname) {
                ctx.trace("appl.module.grow-lapsed", hostname);
                self.free_machine(ctx, grow);
                self.end_grow(ctx, grow, "lapsed");
                self.module_grow_done(ctx, grow);
            }
            return;
        }
        // Module-shrink backstop: if the module failed to coerce the job
        // off the machine, fall back to the sub-appl's signal path.
        if let Some(machine) = self.shrink_timers.remove(&token) {
            if let Some(&grow) = self.by_machine.get(&machine) {
                ctx.trace("appl.shrink.backstop", format_args!("{machine}"));
                if let Some(g) = self.grows.get(&grow) {
                    if let Some(sub) = g.subappl {
                        ctx.send(sub, Payload::Appl(ApplMsg::ReleaseChild));
                    }
                }
            }
        }
    }

    fn on_child_exit(&mut self, ctx: &mut Ctx<'_>, child: ProcId, status: ExitStatus) {
        if self.root == Some(child) {
            // A restartable job that died abnormally is started again (the
            // `start_script` semantics); a clean exit ends the job.
            if !status.is_success() {
                if let Some((make, budget)) = self.restart.as_mut() {
                    if *budget > 0 {
                        *budget -= 1;
                        let behavior = make();
                        let job = self.job.expect("registered");
                        let root = self.spawn_root(ctx, job, behavior);
                        ctx.trace("appl.restart", format_args!("{root} after {status}"));
                        return;
                    }
                }
            }
            self.finish_job(ctx, status);
        }
    }
}
