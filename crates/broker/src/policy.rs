//! Allocation policy — the *plug-in* half of the paper's
//! mechanism/policy separation.
//!
//! The broker implements the mechanisms (interception, redirection,
//! modules, reallocation); which machine a job gets, and at whose expense,
//! is decided by a [`Policy`] object that can be swapped without touching
//! any mechanism code. The [`DefaultPolicy`] reproduces the paper's rules;
//! [`FifoPolicy`] is a deliberately naive alternative used by the policy
//! ablation benchmark.

use rb_proto::{JobId, MachineAttrs, MachineId, SymbolicHost};

/// What the broker knows about one machine when a decision is made.
#[derive(Debug, Clone)]
pub struct MachineView {
    pub id: MachineId,
    pub attrs: MachineAttrs,
    pub state: MachineUse,
    /// The machine's private owner is at the console.
    pub owner_present: bool,
    /// Runnable application processes, per the last daemon report.
    pub load: u32,
    /// The daemon on this machine is reporting (machine is usable).
    pub daemon_alive: bool,
}

/// Broker-side usage state of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineUse {
    /// Unallocated and available.
    Free,
    /// Allocated to a job. `adaptive` mirrors the holding job's class so a
    /// policy can tell which allocations are revocable.
    Allocated { job: JobId, adaptive: bool },
    /// Being vacated; unavailable until the release completes.
    Reclaiming,
    /// Reserved for a specific job (a pending `GrowOffer`).
    Reserved { job: JobId },
    /// Held for its returned owner.
    OwnerHeld,
}

/// What the broker knows about the requesting job.
#[derive(Debug, Clone)]
pub struct AllocContext {
    pub job: JobId,
    pub adaptive: bool,
    /// Symbolic-host constraint from the intercepted `rsh`.
    pub constraint: SymbolicHost,
    /// Machine-level RSL constraints from the job's request
    /// (e.g. `(arch="i686")`).
    pub rsl_constraints: Vec<rb_rsl::Clause>,
    /// Machines the job currently holds.
    pub held: u32,
    /// The job's home machine (where it was submitted; where its master
    /// daemons run). Already part of the job — never granted to it.
    pub home: Option<MachineId>,
    pub user: String,
}

/// Jobs' holdings, for fairness decisions.
#[derive(Debug, Clone)]
pub struct JobView {
    pub job: JobId,
    pub adaptive: bool,
    pub held: u32,
    pub desired: u32,
}

/// The policy's verdict for one allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Use this free/reserved machine.
    Grant(MachineId),
    /// Take `machine` away from `victim` first, then grant it.
    Reclaim { victim: JobId, machine: MachineId },
    /// Nothing can be provided now.
    Deny { reason: String },
}

/// A pluggable allocation policy.
pub trait Policy: Send {
    fn name(&self) -> &'static str;

    /// Choose a machine (or a victim) for a request.
    fn allocate(
        &mut self,
        req: &AllocContext,
        machines: &[MachineView],
        jobs: &[JobView],
    ) -> Decision;

    /// When a machine frees up, which job (with unmet desire) should be
    /// offered it? `None` leaves the machine idle.
    fn offer(&mut self, machine: &MachineView, jobs: &[JobView]) -> Option<JobId> {
        // Default: the adaptive job with unmet desire holding the fewest
        // machines (even partitioning).
        let _ = machine;
        jobs.iter()
            .filter(|j| j.adaptive && j.held < j.desired)
            .min_by_key(|j| (j.held, j.job))
            .map(|j| j.job)
    }

    /// Should an adaptive job be evicted from a private machine when the
    /// owner returns? (The paper's policy: yes, always.)
    fn evict_on_owner_return(&self) -> bool {
        true
    }
}

/// Is `m` eligible for `req` at all (constraint, liveness, privacy rule)?
fn eligible(req: &AllocContext, m: &MachineView) -> bool {
    if !m.daemon_alive || m.owner_present {
        return false;
    }
    if req.home == Some(m.id) {
        return false;
    }
    if !req.constraint.matches(&m.attrs) {
        return false;
    }
    if !rb_rsl::machine_matches(&req.rsl_constraints, &m.attrs) {
        return false;
    }
    // Private machines are allocated only to adaptive jobs (they must be
    // evictable when the owner returns).
    if m.attrs.ownership.is_private() && !req.adaptive {
        return false;
    }
    true
}

/// When is it acceptable to take a machine away from an adaptive job?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReclaimRule {
    /// Reclaim only while it evens out the partition: the victim must hold
    /// strictly more machines than the requester would after the grant.
    /// This is the paper's stated "evenly partition among jobs" policy.
    #[default]
    EvenPartition,
    /// Demand-driven: an explicit request may take any machine an adaptive
    /// job holds. This reproduces the paper's Figure 7 experiment, where a
    /// PVM virtual machine of up to 16 hosts is carved entirely out of a
    /// Calypso job.
    Demand,
}

/// The paper's policy:
///
/// 1. machines reserved for the requesting job are used first;
/// 2. otherwise the least-loaded eligible free machine (public preferred,
///    so private machines stay clear for their owners);
/// 3. otherwise reclaim from the adaptive job holding the most machines,
///    subject to the configured [`ReclaimRule`];
/// 4. otherwise deny (the job's standing desire makes the broker offer a
///    machine later, asynchronously).
#[derive(Debug, Default)]
pub struct DefaultPolicy {
    pub reclaim: ReclaimRule,
}

impl DefaultPolicy {
    pub fn with_rule(reclaim: ReclaimRule) -> Self {
        DefaultPolicy { reclaim }
    }
}

impl Policy for DefaultPolicy {
    fn name(&self) -> &'static str {
        "default"
    }

    fn allocate(
        &mut self,
        req: &AllocContext,
        machines: &[MachineView],
        jobs: &[JobView],
    ) -> Decision {
        // 1. Reserved for us.
        if let Some(m) = machines.iter().find(|m| {
            matches!(m.state, MachineUse::Reserved { job } if job == req.job) && eligible(req, m)
        }) {
            return Decision::Grant(m.id);
        }
        // 2. Free machines: least loaded; public before private; stable by id.
        if let Some(m) = machines
            .iter()
            .filter(|m| m.state == MachineUse::Free && eligible(req, m))
            .min_by_key(|m| (m.load, m.attrs.ownership.is_private(), m.id))
        {
            return Decision::Grant(m.id);
        }
        // 3. Even partitioning: reclaim from the fattest adaptive job.
        let fattest = jobs
            .iter()
            .filter(|j| j.adaptive && j.job != req.job && j.held > 0)
            .max_by_key(|j| (j.held, std::cmp::Reverse(j.job)));
        if let Some(victim) = fattest {
            let may_reclaim = match self.reclaim {
                ReclaimRule::EvenPartition => victim.held > req.held + 1,
                ReclaimRule::Demand => victim.held > 0,
            };
            if may_reclaim {
                // Pick one of the victim's machines satisfying the request.
                if let Some(m) = machines
                    .iter()
                    .filter(|m| {
                        matches!(m.state, MachineUse::Allocated { job, .. } if job == victim.job)
                            && eligible(req, m)
                    })
                    .max_by_key(|m| m.id)
                {
                    return Decision::Reclaim {
                        victim: victim.job,
                        machine: m.id,
                    };
                }
            }
        }
        Decision::Deny {
            reason: "no machine available".into(),
        }
    }
}

/// Naive ablation policy: first free machine in id order, never reclaims,
/// never offers. Under a mixed workload this strands reclaimable capacity,
/// which the `policy_ablation` bench quantifies.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl Policy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn allocate(
        &mut self,
        req: &AllocContext,
        machines: &[MachineView],
        _jobs: &[JobView],
    ) -> Decision {
        machines
            .iter()
            .find(|m| m.state == MachineUse::Free && eligible(req, m))
            .map(|m| Decision::Grant(m.id))
            .unwrap_or(Decision::Deny {
                reason: "no free machine".into(),
            })
    }

    fn offer(&mut self, _machine: &MachineView, _jobs: &[JobView]) -> Option<JobId> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_proto::MachineAttrs;

    fn mv(id: u32, state: MachineUse) -> MachineView {
        MachineView {
            id: MachineId(id),
            attrs: MachineAttrs::public_linux(format!("n{id:02}")),
            state,
            owner_present: false,
            load: 0,
            daemon_alive: true,
        }
    }

    fn req(job: u32, adaptive: bool, held: u32) -> AllocContext {
        AllocContext {
            job: JobId(job),
            adaptive,
            constraint: SymbolicHost::Any,
            rsl_constraints: Vec::new(),
            held,
            home: None,
            user: "u".into(),
        }
    }

    fn jv(job: u32, adaptive: bool, held: u32, desired: u32) -> JobView {
        JobView {
            job: JobId(job),
            adaptive,
            held,
            desired,
        }
    }

    #[test]
    fn default_grants_free_machine() {
        let mut p = DefaultPolicy::default();
        let ms = vec![
            mv(
                0,
                MachineUse::Allocated {
                    job: JobId(9),
                    adaptive: true,
                },
            ),
            mv(1, MachineUse::Free),
        ];
        assert_eq!(
            p.allocate(&req(1, false, 0), &ms, &[]),
            Decision::Grant(MachineId(1))
        );
    }

    #[test]
    fn default_prefers_least_loaded_public() {
        let mut p = DefaultPolicy::default();
        let mut busy = mv(0, MachineUse::Free);
        busy.load = 3;
        let mut private_idle = mv(1, MachineUse::Free);
        private_idle.attrs = MachineAttrs::private_linux("p01", "alice");
        let public_idle = mv(2, MachineUse::Free);
        let ms = vec![busy, private_idle, public_idle];
        // Adaptive job may use private machines, but public is preferred.
        assert_eq!(
            p.allocate(&req(1, true, 0), &ms, &[]),
            Decision::Grant(MachineId(2))
        );
    }

    #[test]
    fn private_machines_only_for_adaptive_jobs() {
        let mut p = DefaultPolicy::default();
        let mut private = mv(0, MachineUse::Free);
        private.attrs = MachineAttrs::private_linux("p01", "alice");
        let ms = vec![private];
        assert!(matches!(
            p.allocate(&req(1, false, 0), &ms, &[]),
            Decision::Deny { .. }
        ));
        assert_eq!(
            p.allocate(&req(1, true, 0), &ms, &[]),
            Decision::Grant(MachineId(0))
        );
    }

    #[test]
    fn owner_present_blocks_allocation() {
        let mut p = DefaultPolicy::default();
        let mut m = mv(0, MachineUse::Free);
        m.owner_present = true;
        assert!(matches!(
            p.allocate(&req(1, true, 0), &[m], &[]),
            Decision::Deny { .. }
        ));
    }

    #[test]
    fn constraint_filters_machines() {
        let mut p = DefaultPolicy::default();
        let mut solaris = mv(0, MachineUse::Free);
        solaris.attrs.os = rb_proto::Os::Solaris;
        let linux = mv(1, MachineUse::Free);
        let ms = vec![solaris, linux];
        let mut r = req(1, true, 0);
        r.constraint = SymbolicHost::AnyOs(rb_proto::Os::Linux);
        assert_eq!(p.allocate(&r, &ms, &[]), Decision::Grant(MachineId(1)));
    }

    #[test]
    fn reclaims_from_fattest_adaptive_job_for_even_partition() {
        let mut p = DefaultPolicy::default();
        let ms: Vec<MachineView> = (0..4)
            .map(|i| {
                mv(
                    i,
                    MachineUse::Allocated {
                        job: JobId(7),
                        adaptive: true,
                    },
                )
            })
            .collect();
        let jobs = vec![jv(7, true, 4, 8), jv(1, true, 0, 2)];
        let d = p.allocate(&req(1, true, 0), &ms, &jobs);
        assert!(
            matches!(d, Decision::Reclaim { victim, .. } if victim == JobId(7)),
            "{d:?}"
        );
    }

    #[test]
    fn does_not_reclaim_when_partition_already_even() {
        let mut p = DefaultPolicy::default();
        let ms = vec![mv(
            0,
            MachineUse::Allocated {
                job: JobId(7),
                adaptive: true,
            },
        )];
        let jobs = vec![jv(7, true, 1, 4), jv(1, true, 1, 4)];
        // Requester already holds 1; victim holds 1: reclaiming would just
        // swap the imbalance.
        assert!(matches!(
            p.allocate(&req(1, true, 1), &ms, &jobs),
            Decision::Deny { .. }
        ));
    }

    #[test]
    fn reserved_machine_goes_to_its_job() {
        let mut p = DefaultPolicy::default();
        let ms = vec![
            mv(0, MachineUse::Reserved { job: JobId(3) }),
            mv(1, MachineUse::Free),
        ];
        assert_eq!(
            p.allocate(&req(3, true, 0), &ms, &[]),
            Decision::Grant(MachineId(0))
        );
        // Another job does not get the reserved machine.
        assert_eq!(
            p.allocate(&req(4, true, 0), &ms, &[]),
            Decision::Grant(MachineId(1))
        );
    }

    #[test]
    fn offer_picks_hungriest_smallest_job() {
        let mut p = DefaultPolicy::default();
        let m = mv(0, MachineUse::Free);
        let jobs = vec![jv(1, true, 3, 8), jv(2, true, 1, 8), jv(3, false, 0, 8)];
        // Job 2 holds least among adaptive jobs with unmet desire.
        assert_eq!(p.offer(&m, &jobs), Some(JobId(2)));
        // Nobody hungry -> no offer.
        let sated = vec![jv(1, true, 8, 8)];
        assert_eq!(p.offer(&m, &sated), None);
    }

    #[test]
    fn demand_rule_reclaims_past_even_split() {
        let mut p = DefaultPolicy::with_rule(ReclaimRule::Demand);
        let ms = vec![mv(
            0,
            MachineUse::Allocated {
                job: JobId(7),
                adaptive: true,
            },
        )];
        let jobs = vec![jv(7, true, 1, 16), jv(1, true, 6, 16)];
        // Requester already holds more than the victim; EvenPartition would
        // deny, Demand reclaims the victim's last machine.
        let d = p.allocate(&req(1, true, 6), &ms, &jobs);
        assert!(matches!(d, Decision::Reclaim { victim, .. } if victim == JobId(7)));
        let mut even = DefaultPolicy::default();
        assert!(matches!(
            even.allocate(&req(1, true, 6), &ms, &jobs),
            Decision::Deny { .. }
        ));
    }

    #[test]
    fn fifo_never_reclaims() {
        let mut p = FifoPolicy;
        let ms = vec![mv(
            0,
            MachineUse::Allocated {
                job: JobId(7),
                adaptive: true,
            },
        )];
        let jobs = vec![jv(7, true, 1, 1)];
        assert!(matches!(
            p.allocate(&req(1, true, 0), &ms, &jobs),
            Decision::Deny { .. }
        ));
        assert_eq!(p.offer(&mv(0, MachineUse::Free), &jobs), None);
    }

    #[test]
    fn dead_daemon_machine_is_ineligible() {
        let mut p = DefaultPolicy::default();
        let mut m = mv(0, MachineUse::Free);
        m.daemon_alive = false;
        assert!(matches!(
            p.allocate(&req(1, true, 0), &[m], &[]),
            Decision::Deny { .. }
        ));
    }
}
