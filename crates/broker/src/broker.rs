//! The network-wide broker process of the resource-management layer.
//!
//! One broker runs per network (with user privileges only). It spawns a
//! monitoring daemon on every machine (restarting failed ones), maintains
//! the machine-status database from daemon reports, admits jobs, and
//! decides — through a pluggable [`Policy`] — which job may use which
//! machine: granting free machines, *reclaiming* machines from adaptive
//! jobs for even partitioning, evicting adaptive jobs from private
//! machines when their owners return, and asynchronously *offering*
//! machines to jobs with unmet standing desire as capacity frees up.

use crate::policy::{AllocContext, Decision, JobView, MachineUse, MachineView, Policy};
use rb_proto::{
    BrokerMsg, CommandSpec, ExitStatus, GrowId, JobId, MachineId, Payload, ProcId, RshError,
    RshHandle, TimerToken,
};
use rb_simcore::FxHashMap;
use rb_simcore::{SimTime, SpanId};
use rb_simnet::{Behavior, Ctx};

/// Broker configuration.
pub struct BrokerConfig {
    pub policy: Box<dyn Policy>,
    /// Spawn a daemon on every machine at startup (disable only in narrow
    /// unit tests).
    pub spawn_daemons: bool,
    /// Queue allocation requests of non-adaptive (batch/sequential) jobs
    /// when nothing is available, instead of denying them. Adaptive jobs
    /// are always denied fast — their runtimes tolerate failed grows and
    /// the offer loop serves them asynchronously.
    pub queue_batch_jobs: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            policy: Box::new(crate::policy::DefaultPolicy::default()),
            spawn_daemons: true,
            queue_batch_jobs: true,
        }
    }
}

#[derive(Debug)]
struct MachInfo {
    daemon: Option<ProcId>,
    usage: MachineUse,
    owner_present: bool,
    load: u32,
    last_contact: SimTime,
    /// An unanswered respawn attempt is in flight.
    respawning: bool,
    /// Keyboard/mouse activity on a *private* machine counts as the owner
    /// being present until this instant (a hold-down so one keystroke does
    /// not thrash allocation).
    activity_hold_until: SimTime,
    /// Effective owner presence as of the last daemon report (for edge
    /// detection).
    last_effective_owner: bool,
}

#[derive(Debug)]
struct JobInfo {
    appl: ProcId,
    adaptive: bool,
    #[allow(dead_code)]
    module: Option<String>,
    desired: u32,
    constraints: Vec<rb_rsl::Clause>,
    held: Vec<MachineId>,
    home: MachineId,
    user: String,
}

/// Why a machine is being vacated.
#[derive(Debug, Clone, Copy)]
enum ReclaimFor {
    /// A pending grow of another job gets it once free. The decide span
    /// stays open across the reclaim: its duration *is* the paper's
    /// reallocation latency.
    Grow {
        job: JobId,
        grow: GrowId,
        span: SpanId,
    },
    /// The private owner returned.
    Owner,
}

/// The broker behavior.
pub struct Broker {
    cfg: BrokerConfig,
    machines: FxHashMap<MachineId, MachInfo>,
    jobs: FxHashMap<JobId, JobInfo>,
    next_job: u32,
    /// machine being vacated -> beneficiary.
    reclaims: FxHashMap<MachineId, ReclaimFor>,
    /// reservation timers: token -> machine.
    reservation_timers: FxHashMap<TimerToken, MachineId>,
    /// FIFO queue of batch-job allocation requests waiting for capacity.
    queue: std::collections::VecDeque<QueuedAlloc>,
    tick_timer: Option<TimerToken>,
    daemon_rsh: FxHashMap<RshHandle, MachineId>,
}

#[derive(Debug, Clone)]
struct QueuedAlloc {
    job: JobId,
    grow: GrowId,
    constraint: rb_proto::SymbolicHost,
    /// The still-open decide span: queue wait is part of the decision.
    span: SpanId,
}

impl Broker {
    pub fn new(cfg: BrokerConfig) -> Self {
        Broker {
            cfg,
            machines: FxHashMap::default(),
            jobs: FxHashMap::default(),
            next_job: 1,
            reclaims: FxHashMap::default(),
            reservation_timers: FxHashMap::default(),
            queue: std::collections::VecDeque::new(),
            tick_timer: None,
            daemon_rsh: FxHashMap::default(),
        }
    }

    fn machine_views(&self, ctx: &Ctx<'_>) -> Vec<MachineView> {
        let now = ctx.now();
        let mut v: Vec<MachineView> = self
            .machines
            .iter()
            .map(|(&id, info)| MachineView {
                id,
                attrs: ctx.attrs_of(id).clone(),
                state: info.usage,
                // Effective presence: logged in, or recent console
                // activity on a private machine.
                owner_present: info.owner_present || now < info.activity_hold_until,
                load: info.load,
                daemon_alive: info.daemon.is_some(),
            })
            .collect();
        v.sort_by_key(|m| m.id);
        v
    }

    /// Per-job holdings, adjusted for in-flight reclaims: a machine being
    /// vacated no longer counts for its victim and already counts for the
    /// requester it is destined for. Without this, a burst of concurrent
    /// grow requests all see the victim's stale count and strip it bare —
    /// the even partition the policy promises would never materialize.
    fn effective_held(&self) -> FxHashMap<JobId, i64> {
        let mut held: FxHashMap<JobId, i64> = self
            .jobs
            .iter()
            .map(|(&job, info)| (job, info.held.len() as i64))
            .collect();
        for (machine, why) in &self.reclaims {
            if let Some((&victim, _)) = self
                .jobs
                .iter()
                .find(|(_, info)| info.held.contains(machine))
            {
                *held.entry(victim).or_default() -= 1;
            }
            if let ReclaimFor::Grow { job, .. } = why {
                *held.entry(*job).or_default() += 1;
            }
        }
        held
    }

    fn job_views(&self) -> Vec<JobView> {
        let effective = self.effective_held();
        let mut v: Vec<JobView> = self
            .jobs
            .iter()
            .map(|(&job, info)| JobView {
                job,
                adaptive: info.adaptive,
                held: effective.get(&job).copied().unwrap_or(0).max(0) as u32,
                desired: info.desired,
            })
            .collect();
        v.sort_by_key(|j| j.job);
        v
    }

    fn grant(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: JobId,
        grow: GrowId,
        machine: MachineId,
        span: SpanId,
    ) {
        let hostname = ctx.hostname_of(machine);
        let Some(info) = self.jobs.get_mut(&job) else {
            // Requester vanished while we worked: machine stays free.
            ctx.close_span(span, "alloc.decide", "job-gone");
            self.set_usage(ctx, machine, MachineUse::Free);
            return;
        };
        info.held.push(machine);
        let adaptive = info.adaptive;
        let appl = info.appl;
        self.set_usage(ctx, machine, MachineUse::Allocated { job, adaptive });
        ctx.trace("broker.grant", format_args!("{hostname} -> {job} ({grow})"));
        ctx.metric_inc("broker.grants", job);
        ctx.close_span(span, "alloc.decide", "granted");
        ctx.send(
            appl,
            Payload::Broker(BrokerMsg::AllocGrant {
                grow,
                machine,
                hostname: hostname.to_string(),
                span,
            }),
        );
    }

    fn set_usage(&mut self, _ctx: &mut Ctx<'_>, machine: MachineId, usage: MachineUse) {
        if let Some(m) = self.machines.get_mut(&machine) {
            m.usage = usage;
        }
    }

    /// Begin taking `machine` away from `victim` on behalf of `target`.
    fn start_reclaim(
        &mut self,
        ctx: &mut Ctx<'_>,
        victim: JobId,
        machine: MachineId,
        why: ReclaimFor,
    ) {
        let Some(vinfo) = self.jobs.get(&victim) else {
            return;
        };
        let appl = vinfo.appl;
        self.set_usage(ctx, machine, MachineUse::Reclaiming);
        self.reclaims.insert(machine, why);
        let host = ctx.hostname_of(machine);
        ctx.trace("broker.reclaim", format_args!("{host} from {victim}"));
        ctx.metric_inc("broker.reclaims", victim);
        ctx.send(appl, Payload::Broker(BrokerMsg::ReleaseMachine { machine }));
    }

    /// Is the machine's owner effectively present (logged in, or recent
    /// keyboard/mouse activity on a private machine)?
    fn owner_effective(&self, now: SimTime, machine: MachineId) -> bool {
        self.machines
            .get(&machine)
            .map(|m| m.owner_present || now < m.activity_hold_until)
            .unwrap_or(false)
    }

    /// A machine just became free: offer it to a hungry job, per policy.
    fn offer_or_idle(&mut self, ctx: &mut Ctx<'_>, machine: MachineId) {
        let now = ctx.now();
        let Some(m) = self.machines.get(&machine) else {
            return;
        };
        let _ = m;
        if self.owner_effective(now, machine) {
            self.set_usage(ctx, machine, MachineUse::OwnerHeld);
            return;
        }
        self.set_usage(ctx, machine, MachineUse::Free);
        let view = MachineView {
            id: machine,
            attrs: ctx.attrs_of(machine).clone(),
            state: MachineUse::Free,
            owner_present: false,
            load: self.machines[&machine].load,
            daemon_alive: self.machines[&machine].daemon.is_some(),
        };
        let jobs = self.job_views();
        if let Some(job) = self.cfg.policy.offer(&view, &jobs) {
            if let Some(jinfo) = self.jobs.get(&job) {
                let appl = jinfo.appl;
                let hostname = view.attrs.hostname.clone();
                self.set_usage(ctx, machine, MachineUse::Reserved { job });
                // Reservations expire so an unresponsive job cannot strand
                // a machine.
                let token = ctx.set_timer(rb_simcore::Duration::from_secs(30));
                self.reservation_timers.insert(token, machine);
                ctx.trace("broker.offer", format_args!("{hostname} -> {job}"));
                ctx.metric_inc("broker.offers", job);
                ctx.send(
                    appl,
                    Payload::Broker(BrokerMsg::GrowOffer { machine, hostname }),
                );
            }
        }
    }

    fn spawn_daemon(&mut self, ctx: &mut Ctx<'_>, machine: MachineId) {
        let hostname = ctx.hostname_of(machine);
        let me = ctx.me();
        let handle = ctx.rsh_standard(&hostname, CommandSpec::RbDaemon { broker: me });
        self.daemon_rsh.insert(handle, machine);
        if let Some(m) = self.machines.get_mut(&machine) {
            m.respawning = true;
        }
    }

    /// Run the policy for one allocation request. `may_queue` is false for
    /// requests replayed from the queue (a second failure re-queues at the
    /// front rather than the back). `req_span` is the appl's `alloc` span;
    /// `decide` is a decide span already opened for this request (queue
    /// replays) or `NONE` for a fresh request.
    #[allow(clippy::too_many_arguments)]
    fn handle_alloc(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: JobId,
        grow: GrowId,
        constraint: rb_proto::SymbolicHost,
        may_queue: bool,
        req_span: SpanId,
        decide: SpanId,
    ) {
        if !self.jobs.contains_key(&job) {
            ctx.close_span(decide, "alloc.decide", "job-gone");
            return; // job finished while queued
        }
        let decide = if decide == SpanId::NONE {
            ctx.open_span(
                req_span,
                "alloc.decide",
                format_args!("{grow} job={job} {constraint}"),
            )
        } else {
            decide
        };
        let held = self.effective_held().get(&job).copied().unwrap_or(0).max(0) as u32;
        let jinfo = self.jobs.get(&job).expect("checked above");
        let req = AllocContext {
            job,
            adaptive: jinfo.adaptive,
            constraint,
            rsl_constraints: jinfo.constraints.clone(),
            held,
            home: Some(jinfo.home),
            user: jinfo.user.clone(),
        };
        let appl = jinfo.appl;
        let machines = self.machine_views(ctx);
        let jobs = self.job_views();
        let decision = self.cfg.policy.allocate(&req, &machines, &jobs);
        match decision {
            Decision::Grant(machine) => {
                // Clear any reservation timer tied to this machine.
                self.reservation_timers.retain(|_, &mut m| m != machine);
                self.grant(ctx, job, grow, machine, decide);
            }
            Decision::Reclaim { victim, machine } => {
                self.start_reclaim(
                    ctx,
                    victim,
                    machine,
                    ReclaimFor::Grow {
                        job,
                        grow,
                        span: decide,
                    },
                );
            }
            Decision::Deny { reason } => {
                if self.cfg.queue_batch_jobs && !req.adaptive {
                    // Batch jobs wait their turn instead of failing; the
                    // user can see them with the query tool.
                    ctx.trace("broker.queued", format_args!("{job} ({grow})"));
                    ctx.metric_inc("broker.queued", job);
                    let entry = QueuedAlloc {
                        job,
                        grow,
                        constraint,
                        span: decide,
                    };
                    if may_queue {
                        self.queue.push_back(entry);
                    } else {
                        self.queue.push_front(entry);
                    }
                } else {
                    ctx.trace("broker.deny", format_args!("{job} ({grow}): {reason}"));
                    ctx.metric_inc("broker.denied", job);
                    ctx.close_span(decide, "alloc.decide", "denied");
                    ctx.send(
                        appl,
                        Payload::Broker(BrokerMsg::AllocDenied { grow, reason }),
                    );
                }
            }
        }
    }

    /// A machine became free: serve the batch queue first; only when no
    /// queued request fits is the machine offered to adaptive jobs.
    fn serve_queue_or_offer(&mut self, ctx: &mut Ctx<'_>, machine: MachineId) {
        // Drop queue entries whose jobs ended meanwhile, closing their
        // decide spans so no allocation tree is left dangling.
        let mut kept = std::collections::VecDeque::with_capacity(self.queue.len());
        for q in std::mem::take(&mut self.queue) {
            if self.jobs.contains_key(&q.job) {
                kept.push_back(q);
            } else {
                ctx.close_span(q.span, "alloc.decide", "job-gone");
            }
        }
        self.queue = kept;
        if let Some(q) = self.queue.pop_front() {
            // Machine state is still whatever it was; mark free first so
            // the policy can pick it (or any other machine).
            if self.owner_effective(ctx.now(), machine) {
                self.set_usage(ctx, machine, MachineUse::OwnerHeld);
                self.queue.push_front(q);
                return;
            }
            self.set_usage(ctx, machine, MachineUse::Free);
            self.handle_alloc(
                ctx,
                q.job,
                q.grow,
                q.constraint,
                false,
                SpanId::NONE,
                q.span,
            );
            return;
        }
        self.offer_or_idle(ctx, machine);
    }

    fn handle_owner_transition(&mut self, ctx: &mut Ctx<'_>, machine: MachineId, present: bool) {
        let usage = match self.machines.get(&machine) {
            Some(m) => m.usage,
            None => return,
        };
        if present {
            match usage {
                MachineUse::Allocated { job, adaptive }
                    if adaptive && self.cfg.policy.evict_on_owner_return() =>
                {
                    ctx.trace("broker.evict.owner", format_args!("{machine} from {job}"));
                    self.start_reclaim(ctx, job, machine, ReclaimFor::Owner);
                }
                MachineUse::Free | MachineUse::Reserved { .. } => {
                    self.set_usage(ctx, machine, MachineUse::OwnerHeld);
                }
                _ => {}
            }
        } else if matches!(usage, MachineUse::OwnerHeld) {
            ctx.trace("broker.owner.left", format_args!("{machine}"));
            self.offer_or_idle(ctx, machine);
        }
    }

    fn cluster_status(&self, ctx: &Ctx<'_>) -> Vec<String> {
        let mut lines = Vec::new();
        let mut ids: Vec<&MachineId> = self.machines.keys().collect();
        ids.sort();
        for &id in ids {
            let m = &self.machines[&id];
            let attrs = ctx.attrs_of(id);
            lines.push(format!(
                "{:<6} {:<8} {:?} load={} owner={} daemon={}",
                attrs.hostname,
                format!("{}/{}", attrs.arch, attrs.os),
                m.usage,
                m.load,
                m.owner_present,
                m.daemon.is_some()
            ));
        }
        let mut jobs: Vec<&JobId> = self.jobs.keys().collect();
        jobs.sort();
        for &job in jobs {
            let j = &self.jobs[&job];
            lines.push(format!(
                "{job}: user={} adaptive={} held={} desired={}",
                j.user,
                j.adaptive,
                j.held.len(),
                j.desired
            ));
        }
        for q in &self.queue {
            lines.push(format!("queued: {} ({})", q.job, q.grow));
        }
        lines
    }
}

impl Behavior for Broker {
    fn name(&self) -> &'static str {
        "broker"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        for id in ctx.all_machines() {
            self.machines.insert(
                id,
                MachInfo {
                    daemon: None,
                    usage: MachineUse::Free,
                    owner_present: false,
                    load: 0,
                    last_contact: now,
                    respawning: false,
                    activity_hold_until: SimTime::ZERO,
                    last_effective_owner: false,
                },
            );
        }
        ctx.trace(
            "broker.up",
            format_args!("{} machines", self.machines.len()),
        );
        if self.cfg.spawn_daemons {
            let ids = ctx.all_machines();
            for id in ids {
                self.spawn_daemon(ctx, id);
            }
        }
        let interval = ctx.cost().daemon_ping_interval;
        self.tick_timer = Some(ctx.set_timer(interval));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.tick_timer == Some(token) {
            // Daemon liveness: a daemon silent for two report intervals is
            // considered dead and respawned (the machine may also be down;
            // the rsh failure arms a retry at the next tick).
            let now = ctx.now();
            let silence_limit = rb_simcore::Duration(
                2 * ctx.cost().daemon_report_interval.as_micros()
                    + ctx.cost().daemon_ping_interval.as_micros(),
            );
            let mut stale: Vec<MachineId> = self
                .machines
                .iter()
                .filter(|(_, m)| {
                    !m.respawning && now.saturating_since(m.last_contact) > silence_limit
                })
                .map(|(&id, _)| id)
                .collect();
            stale.sort();
            for id in stale {
                ctx.trace("broker.daemon.lost", format_args!("{id}"));
                if let Some(m) = self.machines.get_mut(&id) {
                    m.daemon = None;
                }
                self.spawn_daemon(ctx, id);
            }
            let interval = ctx.cost().daemon_ping_interval;
            self.tick_timer = Some(ctx.set_timer(interval));
            return;
        }
        if let Some(machine) = self.reservation_timers.remove(&token) {
            // Reservation expired unused.
            if matches!(
                self.machines.get(&machine).map(|m| m.usage),
                Some(MachineUse::Reserved { .. })
            ) {
                ctx.trace("broker.reservation.expired", format_args!("{machine}"));
                self.set_usage(ctx, machine, MachineUse::Free);
            }
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, RshError>,
    ) {
        if let Some(machine) = self.daemon_rsh.remove(&handle) {
            if let Some(m) = self.machines.get_mut(&machine) {
                m.respawning = false;
                if result.is_err() {
                    ctx.trace("broker.daemon.spawn-failed", format_args!("{machine}"));
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Payload) {
        let Payload::Broker(msg) = msg else { return };
        match msg {
            // ---------------- daemons ----------------
            BrokerMsg::DaemonHello { machine } => {
                if let Some(m) = self.machines.get_mut(&machine) {
                    m.daemon = Some(from);
                    m.last_contact = ctx.now();
                    m.respawning = false;
                }
                // Record the hostname (not the machine id): the linter
                // correlates hellos with grants, which use hostnames.
                ctx.trace("broker.daemon.hello", ctx.hostname_of(machine));
            }
            BrokerMsg::DaemonStatus(report) => {
                let machine = report.machine;
                // On private machines, keyboard/mouse activity means the
                // owner is back even before a login shows up; hold that
                // state for a quiet period so allocation doesn't thrash.
                let private = ctx.attrs_of(machine).ownership.is_private();
                let now = ctx.now();
                let hold = rb_simcore::Duration::from_secs(30);
                let (prev_effective, effective) = match self.machines.get_mut(&machine) {
                    Some(m) => {
                        m.daemon = Some(from);
                        m.last_contact = now;
                        m.load = report.load;
                        let prev = m.last_effective_owner;
                        if private && report.console_active {
                            m.activity_hold_until = now + hold;
                        }
                        m.owner_present = report.owner_present;
                        let eff = m.owner_present || now < m.activity_hold_until;
                        m.last_effective_owner = eff;
                        (prev, eff)
                    }
                    None => return,
                };
                if prev_effective != effective {
                    self.handle_owner_transition(ctx, machine, effective);
                }
            }
            BrokerMsg::DaemonPong { machine, .. } => {
                if let Some(m) = self.machines.get_mut(&machine) {
                    m.last_contact = ctx.now();
                }
            }

            // ---------------- jobs ----------------
            BrokerMsg::RegisterJob {
                appl,
                rsl,
                user,
                home,
            } => {
                let spec = match rb_rsl::parse(&rsl)
                    .map_err(|e| e.to_string())
                    .and_then(|r| rb_rsl::job_spec(&r).map_err(|e| e.to_string()))
                {
                    Ok(spec) => spec,
                    Err(reason) => {
                        ctx.trace("broker.job.rejected", reason.clone());
                        ctx.send(appl, Payload::Broker(BrokerMsg::JobRejected { reason }));
                        return;
                    }
                };
                let job = JobId(self.next_job);
                self.next_job += 1;
                ctx.trace(
                    "broker.job.accepted",
                    format_args!("{job} adaptive={} module={:?}", spec.adaptive, spec.module),
                );
                self.jobs.insert(
                    job,
                    JobInfo {
                        appl,
                        adaptive: spec.adaptive,
                        desired: spec.min_count,
                        module: spec.module,
                        constraints: spec.constraints,
                        held: Vec::new(),
                        home,
                        user,
                    },
                );
                ctx.send(appl, Payload::Broker(BrokerMsg::JobAccepted { job }));
            }
            BrokerMsg::AllocRequest {
                job,
                grow,
                constraint,
                span,
            } => {
                if self.jobs.contains_key(&job) {
                    self.handle_alloc(ctx, job, grow, constraint, true, span, SpanId::NONE);
                } else {
                    ctx.send(
                        from,
                        Payload::Broker(BrokerMsg::AllocDenied {
                            grow,
                            reason: "unknown job".into(),
                        }),
                    );
                }
            }
            BrokerMsg::MachineUnreachable { machine } => {
                ctx.trace("broker.unreachable", format_args!("{machine}"));
                if let Some(m) = self.machines.get_mut(&machine) {
                    // Distrust until a daemon hello/report arrives again;
                    // the liveness tick will keep retrying the respawn.
                    m.daemon = None;
                }
            }
            BrokerMsg::MachineFreed { job, machine } => {
                if let Some(jinfo) = self.jobs.get_mut(&job) {
                    jinfo.held.retain(|&m| m != machine);
                }
                let host = ctx.hostname_of(machine);
                ctx.trace("broker.freed", format_args!("{host} by {job}"));
                match self.reclaims.remove(&machine) {
                    Some(ReclaimFor::Grow {
                        job: target,
                        grow,
                        span,
                    }) => {
                        self.grant(ctx, target, grow, machine, span);
                    }
                    Some(ReclaimFor::Owner) => {
                        self.set_usage(ctx, machine, MachineUse::OwnerHeld);
                    }
                    None => {
                        self.serve_queue_or_offer(ctx, machine);
                    }
                }
            }
            BrokerMsg::JobDone { job } => {
                ctx.trace("broker.job.done", format_args!("{job}"));
                if let Some(jinfo) = self.jobs.remove(&job) {
                    for machine in jinfo.held {
                        match self.reclaims.remove(&machine) {
                            Some(ReclaimFor::Grow {
                                job: target,
                                grow,
                                span,
                            }) => {
                                self.grant(ctx, target, grow, machine, span);
                            }
                            Some(ReclaimFor::Owner) => {
                                self.set_usage(ctx, machine, MachineUse::OwnerHeld);
                            }
                            None => self.serve_queue_or_offer(ctx, machine),
                        }
                    }
                }
                let mut kept = std::collections::VecDeque::with_capacity(self.queue.len());
                for q in std::mem::take(&mut self.queue) {
                    if q.job != job {
                        kept.push_back(q);
                    } else {
                        ctx.close_span(q.span, "alloc.decide", "job-done");
                    }
                }
                self.queue = kept;
                // Reservations held for the finished job lapse.
                let mut lapsed: Vec<MachineId> = self
                    .machines
                    .iter()
                    .filter(|(_, m)| matches!(m.usage, MachineUse::Reserved { job: r } if r == job))
                    .map(|(&id, _)| id)
                    .collect();
                lapsed.sort();
                for machine in lapsed {
                    self.serve_queue_or_offer(ctx, machine);
                }
            }

            // ---------------- user tools ----------------
            BrokerMsg::QueryCluster { reply_to } => {
                let lines = self.cluster_status(ctx);
                ctx.send(
                    reply_to,
                    Payload::Broker(BrokerMsg::ClusterStatus { lines }),
                );
            }
            _ => {}
        }
    }
}
