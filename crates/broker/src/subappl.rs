//! The sub-`appl` process: the application layer's per-machine agent.
//!
//! A sub-`appl` is started (by the `appl`, over the standard `rsh`) on
//! every machine a job extends to. It fetches the program to execute from
//! the `appl`, spawns it locally with the job's environment (and `rsh'` on
//! its PATH), monitors it, and — when the broker reclaims the machine —
//! sends it a standard Unix signal, granting a grace period before killing
//! it outright. Between events it lies dormant and imposes no overhead.

use rb_proto::{ApplMsg, ExitStatus, GrowId, JobId, Payload, ProcId, Signal, TimerToken};
use rb_simcore::SpanId;
use rb_simnet::{Behavior, Ctx, ProcEnv, RshBinding};

/// The sub-`appl` behavior.
pub struct SubAppl {
    appl: ProcId,
    job: JobId,
    grow: GrowId,
    child: Option<ProcId>,
    child_alive: bool,
    releasing: bool,
    grace_timer: Option<TimerToken>,
    /// Bounds the wait for the appl's `Program` message: if the appl died
    /// between spawning us and delegating work, exit instead of lingering.
    program_timer: Option<TimerToken>,
    /// `alloc.exec` — open while the delegated program runs here.
    exec_span: SpanId,
}

impl SubAppl {
    pub fn new(appl: ProcId, job: JobId, grow: GrowId) -> Self {
        SubAppl {
            appl,
            job,
            grow,
            child: None,
            child_alive: false,
            releasing: false,
            grace_timer: None,
            program_timer: None,
            exec_span: SpanId::NONE,
        }
    }

    /// Close the exec span (if open) with `outcome`.
    fn end_exec(&mut self, ctx: &mut Ctx<'_>, outcome: &str) {
        let span = std::mem::replace(&mut self.exec_span, SpanId::NONE);
        ctx.close_span(span, "alloc.exec", outcome);
    }

    fn report_released(&mut self, ctx: &mut Ctx<'_>) {
        let machine = ctx.machine();
        ctx.send(
            self.appl,
            Payload::Appl(ApplMsg::Released {
                grow: self.grow,
                machine,
            }),
        );
        ctx.trace("subappl.released", ctx.hostname());
        ctx.exit(ExitStatus::Success);
    }
}

impl Behavior for SubAppl {
    fn name(&self) -> &'static str {
        "sub-appl"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Daemonize so the appl's rsh completes, then announce readiness
        // after our (small) startup cost.
        ctx.detach();
        let machine = ctx.machine();
        let startup = ctx.cost().subappl_startup;
        ctx.trace("subappl.start", ctx.hostname());
        ctx.send_after(
            self.appl,
            Payload::Appl(ApplMsg::SubApplReady {
                grow: self.grow,
                machine,
            }),
            startup,
        );
        self.program_timer = Some(ctx.set_timer(rb_simcore::Duration::from_secs(30)));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        match msg {
            Payload::Appl(ApplMsg::Program { grow, cmd, span }) => {
                debug_assert_eq!(grow, self.grow);
                if let Some(t) = self.program_timer.take() {
                    ctx.cancel_timer(t);
                }
                self.exec_span = ctx.open_span(
                    span,
                    "alloc.exec",
                    format_args!("{grow} job={} {}", self.job, cmd.name()),
                );
                let Some(behavior) = ctx.build_program(&cmd) else {
                    ctx.trace("subappl.no-such-program", cmd.name());
                    self.end_exec(ctx, "no-program");
                    ctx.send(
                        self.appl,
                        Payload::Appl(ApplMsg::ChildExited {
                            grow: self.grow,
                            status: ExitStatus::Failure(127),
                        }),
                    );
                    ctx.exit(ExitStatus::Failure(127));
                    return;
                };
                // The child runs as the job's user, managed by the broker:
                // its PATH resolves rsh to rsh'.
                let mut env = ctx.env().clone();
                env.job = Some(self.job);
                env.appl = Some(self.appl);
                env.rsh = RshBinding::Broker;
                env.system = false;
                let env = ProcEnv { ..env };
                let child = ctx.spawn_local_with_env(behavior, env);
                self.child = Some(child);
                self.child_alive = true;
                ctx.trace("subappl.spawn", format_args!("{} -> {child}", cmd.name()));
                ctx.send(
                    self.appl,
                    Payload::Appl(ApplMsg::ChildStarted {
                        grow: self.grow,
                        child,
                    }),
                );
            }
            Payload::Appl(ApplMsg::ReleaseChild) => {
                self.releasing = true;
                ctx.trace("subappl.release", ctx.hostname());
                if self.child_alive {
                    if let Some(child) = self.child {
                        // Standard Unix signal; grace period; then SIGKILL.
                        ctx.kill(child, Signal::Term);
                        let grace = ctx.cost().release_grace;
                        self.grace_timer = Some(ctx.set_timer(grace));
                    }
                } else {
                    self.report_released(ctx);
                }
            }
            Payload::Appl(ApplMsg::Shutdown) => {
                if self.child_alive {
                    if let Some(child) = self.child {
                        ctx.kill(child, Signal::Kill);
                    }
                }
                self.end_exec(ctx, "shutdown");
                ctx.exit(ExitStatus::Success);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.program_timer == Some(token) {
            // The appl never delegated a program (it probably died): don't
            // linger as an orphan on someone else's machine.
            ctx.trace("subappl.program-timeout", ctx.hostname());
            ctx.exit(ExitStatus::Failure(1));
            return;
        }
        if self.grace_timer == Some(token) && self.child_alive {
            // The child did not terminate within the grace period.
            if let Some(child) = self.child {
                ctx.trace("subappl.grace-expired", ctx.hostname());
                ctx.kill(child, Signal::Kill);
            }
        }
    }

    fn on_child_detach(&mut self, ctx: &mut Ctx<'_>, child: ProcId) {
        if self.child == Some(child) {
            ctx.send(
                self.appl,
                Payload::Appl(ApplMsg::ChildDetached {
                    grow: self.grow,
                    child,
                }),
            );
        }
    }

    fn on_child_exit(&mut self, ctx: &mut Ctx<'_>, child: ProcId, status: ExitStatus) {
        if self.child != Some(child) {
            return;
        }
        self.child_alive = false;
        if let Some(t) = self.grace_timer.take() {
            ctx.cancel_timer(t);
        }
        self.end_exec(
            ctx,
            if status.is_success() {
                "done"
            } else {
                "failed"
            },
        );
        if self.releasing {
            self.report_released(ctx);
        } else {
            ctx.send(
                self.appl,
                Payload::Appl(ApplMsg::ChildExited {
                    grow: self.grow,
                    status,
                }),
            );
            ctx.exit(ExitStatus::Success);
        }
    }
}
