//! The per-machine monitoring daemon of the resource-management layer.
//!
//! One daemon runs on every machine (with user privileges only). It
//! monitors CPU status, logged-in users, keyboard/mouse activity, and the
//! owner's presence, and reports periodically to the network-wide broker
//! process, which restarts daemons that fail.

use rb_proto::{BrokerMsg, DaemonReport, Payload, ProcId, TimerToken};
use rb_simnet::{Behavior, Ctx};

/// The machine daemon behavior.
pub struct RbDaemon {
    broker: ProcId,
    report_timer: Option<TimerToken>,
}

impl RbDaemon {
    pub fn new(broker: ProcId) -> Self {
        RbDaemon {
            broker,
            report_timer: None,
        }
    }

    fn report(&mut self, ctx: &mut Ctx<'_>) {
        let status = ctx.poll_machine_status();
        ctx.metric_inc("daemon.reports", ctx.hostname());
        ctx.send(
            self.broker,
            Payload::Broker(BrokerMsg::DaemonStatus(DaemonReport {
                machine: status.machine,
                // "Load" for policy purposes is machine occupancy: runnable
                // CPU bursts plus resident application processes (the
                // paper's daemons report CPU status and running jobs).
                load: status.load + status.app_procs,
                users: status.users,
                console_active: status.console_active,
                owner_present: status.owner_present,
            })),
        );
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>) {
        let interval = ctx.cost().daemon_report_interval;
        self.report_timer = Some(ctx.set_timer(interval));
    }
}

impl Behavior for RbDaemon {
    fn name(&self) -> &'static str {
        "rb-daemon"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let machine = ctx.machine();
        ctx.send(
            self.broker,
            Payload::Broker(BrokerMsg::DaemonHello { machine }),
        );
        // Daemonize so the broker's spawning rsh completes.
        ctx.detach();
        // First report immediately, then periodically.
        self.report(ctx);
        self.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.report_timer == Some(token) {
            self.report(ctx);
            self.arm(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Payload) {
        if let Payload::Broker(BrokerMsg::DaemonPing { seq }) = msg {
            let machine = ctx.machine();
            ctx.send(
                from,
                Payload::Broker(BrokerMsg::DaemonPong { machine, seq }),
            );
        }
    }
}
