//! `rsh'` — ResourceBroker's interposing replacement for the standard
//! remote shell.
//!
//! `rsh'` is what turns unmodified programs into managed ones: parallel
//! systems ultimately spawn remote processes through `rsh`, so replacing
//! the binary on `$PATH` is a functional interface that requires no
//! recompilation. The shim classifies its host argument:
//!
//! * **symbolic** (`anyhost`, `anylinux`, …) → an intra-job resource
//!   manager is asking for assistance: forward to the managing `appl` and
//!   exit with whatever outcome it dictates (redirect, or the Phase-I
//!   failure of the module protocol);
//! * **real** under broker management → consult the `appl` (it may be the
//!   second phase of a module grow); normally it answers "proceed", and
//!   `rsh'` runs the standard `rsh` itself — sub-millisecond overhead;
//! * anything without a managing `appl` → fall back to the standard `rsh`
//!   outright, so installing `rsh'` system-wide is harmless.
//!
//! Each managed invocation opens an `rsh.request` root span; the appl
//! parents the grow's `alloc` span under it, so one allocation reads as
//! one tree in the trace. The span closes when the shim exits, whatever
//! the path.

use rb_proto::{ApplMsg, ExitStatus, Payload, ProcId, RshError, RshHandle, TimerToken};
use rb_simcore::{Duration, SpanId};
use rb_simnet::{Behavior, Ctx, RshPrimeFactory, RshPrimeRequest};

/// How long `rsh'` waits for its `appl` before giving up.
const APPL_TIMEOUT: Duration = Duration::from_secs(30);

enum State {
    /// Waiting for the appl's verdict.
    AwaitAppl,
    /// Running the standard rsh ourselves.
    Standard(RshHandle),
}

/// The `rsh'` process.
pub struct RshPrime {
    req: RshPrimeRequest,
    state: State,
    timeout: Option<TimerToken>,
    /// The `rsh.request` root span covering this invocation.
    span: SpanId,
}

impl RshPrime {
    pub fn new(req: RshPrimeRequest) -> Self {
        RshPrime {
            req,
            state: State::AwaitAppl,
            timeout: None,
            span: SpanId::NONE,
        }
    }

    fn run_standard(&mut self, ctx: &mut Ctx<'_>) {
        let handle = ctx.rsh_standard_spec(self.req.host.clone(), self.req.cmd.clone());
        self.state = State::Standard(handle);
    }

    /// Exit, closing the request span with the final status.
    fn finish(&mut self, ctx: &mut Ctx<'_>, status: ExitStatus) {
        ctx.close_span(self.span, "rsh.request", format_args!("{status}"));
        self.span = SpanId::NONE;
        ctx.exit(status);
    }
}

impl Behavior for RshPrime {
    fn name(&self) -> &'static str {
        "rsh-prime"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.span = ctx.open_span(
            SpanId::NONE,
            "rsh.request",
            format_args!("{} {}", self.req.host, self.req.cmd.name()),
        );
        match self.req.caller_env.appl {
            Some(appl) => {
                ctx.trace(
                    "rsh.intercept",
                    format_args!("{} {}", self.req.host, self.req.cmd.name()),
                );
                ctx.send(
                    appl,
                    Payload::Appl(ApplMsg::Intercepted {
                        origin: self.req.caller,
                        host: self.req.host.clone(),
                        cmd: self.req.cmd.clone(),
                        span: self.span,
                    }),
                );
                self.timeout = Some(ctx.set_timer(APPL_TIMEOUT));
            }
            None => {
                // Not under broker management: behave exactly like rsh.
                ctx.trace("rsh.fallback", self.req.host.to_string());
                self.run_standard(ctx);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Payload) {
        if !matches!(self.state, State::AwaitAppl) {
            return;
        }
        match msg {
            Payload::Appl(ApplMsg::RshOutcome { status }) => {
                if let Some(t) = self.timeout.take() {
                    ctx.cancel_timer(t);
                }
                self.finish(ctx, status);
            }
            Payload::Appl(ApplMsg::RshProceedStandard) => {
                if let Some(t) = self.timeout.take() {
                    ctx.cancel_timer(t);
                }
                ctx.trace("rsh.passthrough", self.req.host.to_string());
                self.run_standard(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if self.timeout == Some(token) && matches!(self.state, State::AwaitAppl) {
            ctx.trace("rsh.appl-timeout", self.req.host.to_string());
            self.finish(ctx, ExitStatus::Failure(1));
        }
    }

    fn on_rsh_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        handle: RshHandle,
        result: Result<ExitStatus, RshError>,
    ) {
        if let State::Standard(h) = self.state {
            if h == handle {
                match result {
                    Ok(status) => self.finish(ctx, status),
                    Err(_) => self.finish(ctx, ExitStatus::Failure(1)),
                }
            }
        }
    }
}

/// Installs `rsh'` as the cluster's shim.
pub struct RshPrimeInstaller;

impl RshPrimeFactory for RshPrimeInstaller {
    fn build(&self, req: RshPrimeRequest) -> Box<dyn Behavior> {
        Box::new(RshPrime::new(req))
    }
}
