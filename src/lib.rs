//! # resourcebroker — just-in-time allocation of resources to adaptive parallel programs
//!
//! A faithful, fully simulated reproduction of *Mechanisms for Just-in-Time
//! Allocation of Resources to Adaptive Parallel Programs* (Baratloo,
//! Itzkovitz, Kedem, Zhao — IPPS 1999): a user-level resource broker that
//! manages **unmodified** PVM, LAM/MPI, Calypso, and PLinda programs by
//! interposing on `rsh`, redirecting symbolic host names to machines chosen
//! just in time, and coercing systems that refuse anonymous machines
//! through a two-phase external-module protocol.
//!
//! ## Crate map
//!
//! * [`proto`] — ids and wire messages shared by every component
//! * [`simcore`] — deterministic discrete-event kernel
//! * [`simnet`] — the simulated network of workstations (machines,
//!   processes, signals, CPU sharing, `rsh`/`rshd`)
//! * [`rsl`] — the Resource Specification Language
//! * [`parsys`] — the four commodity parallel programming systems
//! * [`broker`] — ResourceBroker itself (the paper's contribution)
//! * [`workloads`] — the evaluation scenarios (every table and figure)
//!
//! ## Quickstart
//!
//! ```
//! use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
//! use resourcebroker::proto::CommandSpec;
//! use resourcebroker::simcore::SimTime;
//!
//! // A 4-machine cluster managed by the broker.
//! let mut cluster = build_standard_cluster(4, 1);
//! cluster.settle();
//!
//! // Run a sequential program on a machine the broker picks just in time.
//! let appl = cluster.submit(
//!     cluster.machines[0],
//!     JobRequest {
//!         rsl: "(adaptive=0)".into(),
//!         user: "alice".into(),
//!         run: JobRun::Remote {
//!             host: "anylinux".into(),
//!             cmd: CommandSpec::Loop { cpu_millis: 1000 },
//!         },
//!     },
//! );
//! let status = cluster.await_appl(appl, SimTime(60_000_000)).unwrap();
//! assert!(status.is_success());
//! ```

pub use rb_broker as broker;
pub use rb_parsys as parsys;
pub use rb_proto as proto;
pub use rb_rsl as rsl;
pub use rb_simcore as simcore;
pub use rb_simnet as simnet;
pub use rb_workloads as workloads;
