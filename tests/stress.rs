//! Randomized stress testing: mixed workloads of all four programming
//! systems plus batch jobs arriving on randomly sized clusters, checked
//! against global allocation invariants recovered from the event trace.
//!
//! This is model-checking-lite: the schedules are deterministic per seed,
//! so any violation found here is replayable.

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{
    CalypsoConfig, CalypsoMaster, MakeRule, PlindaConfig, PlindaServer, Pmake, PmakeConfig,
    PvmMaster, PvmMasterConfig, TaskBag,
};
use resourcebroker::proto::CommandSpec;
use resourcebroker::simcore::{Duration, SimRng};

fn random_workload(seed: u64) {
    let mut rng = SimRng::seeded(seed);
    let machines = rng.uniform_u64(3, 9) as usize;
    let mut c = build_standard_cluster(machines, seed);
    // Trace invariants (no double allocation, reclaims terminate, SIGKILL
    // only after SIGTERM+grace, ...) are checked by the rb-analyze linter
    // at the end of the run.
    rb_analyze::install_linter(&mut c.world);
    c.settle();

    let n_jobs = rng.uniform_u64(3, 8);
    for i in 0..n_jobs {
        let kind = rng.uniform_u64(0, 5);
        let user = format!("user{i}");
        let req = match kind {
            0 => JobRequest {
                rsl: format!("+(count>={})(adaptive=1)", rng.uniform_u64(1, 4)),
                user,
                run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                    tasks: TaskBag::Finite(vec![
                        rng.uniform_u64(200, 2_000);
                        rng.uniform_u64(2, 10) as usize
                    ]),
                    desired_workers: rng.uniform_u64(1, 4) as u32,
                    hostfile: vec!["anylinux".into()],
                    task_timeout: Some(Duration::from_secs(20)),
                }))),
            },
            1 => JobRequest {
                rsl: "+(count>=1)(adaptive=1)".into(),
                user,
                run: JobRun::Root(Box::new(PlindaServer::new(PlindaConfig {
                    tasks: vec![rng.uniform_u64(200, 1_500); rng.uniform_u64(2, 8) as usize],
                    desired_workers: rng.uniform_u64(1, 3) as u32,
                    hostfile: vec!["anylinux".into()],
                    persistent: false,
                }))),
            },
            2 => JobRequest {
                rsl: r#"+(count>=1)(adaptive=1)(module="pvm")"#.into(),
                user,
                run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                    initial_hosts: vec!["anylinux".into()],
                    default_task_millis: 400,
                    ..Default::default()
                }))),
            },
            3 => JobRequest {
                rsl: "(adaptive=0)".into(),
                user,
                run: JobRun::Root(Box::new(Pmake::new(PmakeConfig {
                    rules: vec![
                        MakeRule::new("a", &[], rng.uniform_u64(200, 1_000)),
                        MakeRule::new("b", &["a"], rng.uniform_u64(200, 1_000)),
                        MakeRule::new("c", &["a"], rng.uniform_u64(200, 1_000)),
                        MakeRule::new("goal", &["b", "c"], 300),
                    ],
                    goal: "goal".into(),
                    jobs: 2,
                    hostfile: vec!["anylinux".into()],
                }))),
            },
            _ => JobRequest {
                rsl: "(adaptive=0)".into(),
                user,
                run: JobRun::Remote {
                    host: "anylinux".into(),
                    cmd: CommandSpec::Loop {
                        cpu_millis: rng.uniform_u64(500, 5_000),
                    },
                },
            },
        };
        let delay = Duration::from_millis(rng.uniform_u64(0, 20_000));
        let when = c.world.now() + delay;
        let broker = c.broker;
        let modules = c.modules.clone();
        let home = c.machines[0];
        c.world.schedule(when, move |w| {
            resourcebroker::broker::submit_job(w, home, broker, &modules, req);
        });
    }

    // Random mid-run disturbance: keyboard activity, a daemon death, a
    // whole-machine crash (restored a minute later), or nothing.
    match rng.uniform_u64(0, 4) {
        0 => {
            let m = c.machines[rng.index(c.machines.len())];
            let at = c.world.now() + Duration::from_secs(rng.uniform_u64(5, 30));
            c.world.schedule(at, move |w| w.touch_console(m));
        }
        1 => {
            let at = c.world.now() + Duration::from_secs(rng.uniform_u64(5, 30));
            c.world.schedule(at, |w| {
                if let Some(&d) = w.procs_named("rb-daemon").first() {
                    w.kill_from_harness(d, resourcebroker::proto::Signal::Kill);
                }
            });
        }
        // Never crash the home machine (the broker itself lives there;
        // broker fail-over is outside the paper's scope).
        2 if c.machines.len() > 1 => {
            let m = c.machines[1 + rng.index(c.machines.len() - 1)];
            let at = c.world.now() + Duration::from_secs(rng.uniform_u64(5, 30));
            c.world.schedule(at, move |w| w.set_machine_up(m, false));
            let back = at + Duration::from_secs(60);
            c.world.schedule(back, move |w| w.set_machine_up(m, true));
        }
        _ => {}
    }

    // Run three simulated minutes — long enough for every finite job to
    // finish and the cluster to reach steady state.
    c.world.run_until(c.world.now() + Duration::from_secs(180));

    if let Err(e) = c.world.run_trace_checks() {
        panic!("seed {seed}: {e}");
    }

    // No sub-appl outlives its job's machines: any alive sub-appl must
    // still have an alive appl.
    let appls = c.world.procs_named("appl");
    for sub in c.world.procs_named("sub-appl") {
        assert!(
            !appls.is_empty(),
            "orphan sub-appl {sub} with no appl alive"
        );
    }
}

#[test]
fn stress_mixed_workloads_32_seeds() {
    for seed in 0..32 {
        random_workload(9_000 + seed);
    }
}

#[test]
fn stress_is_deterministic_per_seed() {
    // Same seed twice: identical traces (the whole stress harness included).
    fn trace_of(seed: u64) -> String {
        let mut rng = SimRng::seeded(seed);
        let machines = rng.uniform_u64(3, 9) as usize;
        let mut c = build_standard_cluster(machines, seed);
        c.settle();
        c.submit(
            c.machines[0],
            JobRequest {
                rsl: "+(count>=2)(adaptive=1)".into(),
                user: "u".into(),
                run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                    tasks: TaskBag::Finite(vec![500; 6]),
                    desired_workers: 2,
                    hostfile: vec!["anylinux".into()],
                    task_timeout: None,
                }))),
            },
        );
        c.world.run_until(c.world.now() + Duration::from_secs(60));
        c.world.trace().render()
    }
    assert_eq!(trace_of(4242), trace_of(4242));
}
