//! A day in the life of the department: privately owned workstations are
//! used by their owners during office hours and harvested by an adaptive
//! job at night — the workload the paper's private/public policy is for.

use resourcebroker::broker::{build_cluster, ClusterOptions, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, TaskBag};
use resourcebroker::proto::MachineAttrs;
use resourcebroker::simcore::{Duration, SimTime};

#[test]
fn overnight_harvest_of_private_workstations() {
    // 2 public lab machines + 4 private desks.
    let mut machines = vec![
        MachineAttrs::public_linux("lab0"),
        MachineAttrs::public_linux("lab1"),
    ];
    for (i, owner) in ["ann", "ben", "cat", "dan"].iter().enumerate() {
        machines.push(MachineAttrs::private_linux(format!("desk{i}"), *owner));
    }
    let opts = ClusterOptions {
        seed: 2024,
        machines,
        ..Default::default()
    };
    let mut c = build_cluster(opts);
    let desks: Vec<_> = (2..6).map(|i| c.machines[i]).collect();

    // 9am: everyone is at their desk.
    for &d in &desks {
        c.world.set_owner_present(d, true);
    }
    c.settle();

    // The overnight batch job wants as much as it can get.
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=5)(adaptive=1)".into(),
            user: "hpc".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 1_500 },
                desired_workers: 5,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    // Daytime (30 simulated minutes): only lab1 is harvestable (lab0 runs
    // the broker/master infrastructure and counts as home).
    c.world
        .run_until(c.world.now() + Duration::from_secs(1_800));
    let workers_day = c.world.procs_named("calypso-worker");
    assert_eq!(workers_day.len(), 1, "daytime: only the lab machine");
    for &w in &workers_day {
        let host = c.world.hostname(c.world.proc_machine(w).unwrap());
        assert!(host.starts_with("lab"), "daytime worker on {host}");
    }

    // 6pm: people trickle out over an hour.
    for (k, &d) in desks.iter().enumerate() {
        let at = c.world.now() + Duration::from_secs(900 * (k as u64 + 1));
        c.world.schedule(at, move |w| w.set_owner_present(d, false));
    }
    // Midnight: the job should have expanded onto every desk.
    c.world
        .run_until(c.world.now() + Duration::from_secs(4 * 3_600));
    let workers_night = c.world.procs_named("calypso-worker");
    assert_eq!(workers_night.len(), 5, "night: labs + all four desks");
    let mut hosts: Vec<String> = workers_night
        .iter()
        .map(|&w| {
            c.world
                .hostname(c.world.proc_machine(w).unwrap())
                .to_string()
        })
        .collect();
    hosts.sort();
    assert!(hosts.iter().filter(|h| h.starts_with("desk")).count() == 4);

    // 8am: everyone returns within minutes; every desk is vacated shortly
    // after its owner sits down.
    for (k, &d) in desks.iter().enumerate() {
        let at = c.world.now() + Duration::from_secs(120 * (k as u64 + 1));
        c.world.schedule(at, move |w| w.set_owner_present(d, true));
    }
    c.world
        .run_until(c.world.now() + Duration::from_secs(1_200));
    let workers_morning = c.world.procs_named("calypso-worker");
    assert_eq!(workers_morning.len(), 1, "morning: back to the lab only");
    for &d in &desks {
        assert_eq!(c.world.app_procs_on(d), 0, "desk not vacated");
    }
    // Four evictions, four grow-offers consumed overnight.
    assert!(c.world.trace().count("broker.evict.owner") >= 4);
    assert!(c.world.trace().count("broker.offer") >= 4);

    // Overnight, the desks actually did useful work.
    let mut desk_busy = 0.0;
    for &d in &desks {
        desk_busy += c.world.busy_time(d).as_secs_f64();
    }
    assert!(
        desk_busy > 4.0 * 3_600.0 * 0.8,
        "desks computed {desk_busy}s overnight"
    );
    let _ = SimTime::ZERO;
}
