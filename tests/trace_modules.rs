//! Mechanism validation for the paper's Figure 6: the *two-phase external
//! module* protocol for systems that refuse anonymous machines — and the
//! extensibility claim: future programming systems are supported by
//! plugging in a module, without recompiling the broker.

use resourcebroker::broker::{
    build_cluster, build_standard_cluster, Cluster, ClusterOptions, ExternalModule, JobRequest,
    JobRun, ModuleRegistry,
};
use resourcebroker::parsys::{
    CalypsoConfig, CalypsoMaster, LamOrigin, LamOriginConfig, PvmMaster, PvmMasterConfig, TaskBag,
};
use resourcebroker::simcore::SimTime;
use resourcebroker::simnet::Ctx;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cluster(n: usize) -> Cluster {
    let mut c = build_standard_cluster(n, 17);
    c.settle();
    c
}

/// Figure 6's two phases, by trace topic.
const FIGURE6: &[&str] = &[
    "rsh.intercept",      // (1) master pvmd issues rsh anylinux
    "appl.module.phase1", // (2-6) appl learns of it, requests a machine
    "broker.grant",       // the broker selects one
    "pvm.add.failed",     // (7) phase I ends in a visible failed add
    "module.pvm.grow",    // (1') pvm_grow drives a console
    "pvm.add.attempt",    // (2') the master re-issues rsh with a real name
    "appl.module.phase2", // proceed: sub-appl chain on the named machine
    "subappl.spawn",
    "pvm.slave.accepted", // the slave's hostname matches: accepted
];

#[test]
fn figure6_steps_for_pvm() {
    let mut c = cluster(3);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=1)(adaptive=1)(module="pvm")"#.into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                initial_hosts: vec!["anylinux".into()],
                ..Default::default()
            }))),
        },
    );
    c.world.run_until(SimTime(20_000_000));
    c.world.trace().check_order(FIGURE6).unwrap();
    assert_eq!(c.world.procs_named("pvmd").len(), 1);
    assert_eq!(c.world.trace().count("pvm.slave.refused"), 0);
}

#[test]
fn same_mechanism_drives_lam_without_broker_changes() {
    let mut c = cluster(3);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=1)(adaptive=1)(module="lam")"#.into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(LamOrigin::new(LamOriginConfig {
                boot_hosts: vec!["anylinux".into()],
                ..Default::default()
            }))),
        },
    );
    c.world.run_until(SimTime(20_000_000));
    c.world
        .trace()
        .check_order(&[
            "rsh.intercept",
            "appl.module.phase1",
            "broker.grant",
            "lam.grow.failed",
            "module.lam.grow",
            "lam.grow.attempt",
            "appl.module.phase2",
            "lam.node.accepted",
        ])
        .unwrap();
    assert_eq!(c.world.procs_named("lamd").len(), 1);
}

#[test]
fn without_module_option_pvm_cannot_use_symbolic_hosts() {
    // Submitted WITHOUT (module="pvm"): the default redirect delivers the
    // slave to an unexpected machine and PVM refuses it — exactly why the
    // module mechanism exists.
    let mut c = cluster(3);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                initial_hosts: vec!["anylinux".into()],
                ..Default::default()
            }))),
        },
    );
    c.world.run_until(SimTime(20_000_000));
    // At least one refusal; the appl's offer cooldown keeps the cluster
    // from thrashing on a job that cannot use redirected machines.
    let refused = c.world.trace().count("pvm.slave.refused");
    assert!((1..=3).contains(&refused), "refusals: {refused}");
    assert!(c.world.procs_named("pvmd").is_empty());
    // The master survives the failed add (tolerance property).
    assert_eq!(c.world.procs_named("pvm-master").len(), 1);
}

/// A user-defined module for a hypothetical future programming system:
/// counts its invocations to prove the registry dispatched to it.
struct CountingModule {
    grows: Arc<AtomicUsize>,
}

impl ExternalModule for CountingModule {
    fn name(&self) -> &'static str {
        "future-sys"
    }
    fn grow(&self, ctx: &mut Ctx<'_>, hostname: &str) {
        self.grows.fetch_add(1, Ordering::SeqCst);
        ctx.trace("module.future.grow", hostname.to_string());
    }
    fn shrink(&self, _ctx: &mut Ctx<'_>, _hostname: &str) {}
    fn halt(&self, _ctx: &mut Ctx<'_>) {}
}

#[test]
fn user_defined_modules_plug_in_without_recompilation() {
    let opts = ClusterOptions {
        seed: 3,
        machines: (0..3)
            .map(|i| resourcebroker::proto::MachineAttrs::public_linux(format!("n{i:02}")))
            .collect(),
        ..Default::default()
    };
    let mut c = build_cluster(opts);
    let grows = Arc::new(AtomicUsize::new(0));
    // Register the third-party module (the analogue of dropping
    // `future-sys_grow` into the module directory).
    let mut registry = ModuleRegistry::standard();
    registry.register(Arc::new(CountingModule {
        grows: grows.clone(),
    }));
    c.modules = Arc::new(registry);
    c.settle();

    // Any job claiming (module="future-sys") now routes grow coercion to
    // the custom module. Use a Calypso master as the stand-in root (its
    // rsh is intercepted like any other program's).
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=1)(adaptive=1)(module="future-sys")"#.into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 500 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(20_000_000));
    assert_eq!(grows.load(Ordering::SeqCst), 1, "custom module invoked");
    assert_eq!(c.world.trace().count("module.future.grow"), 1);
}

#[test]
fn failed_coercion_returns_the_machine() {
    // The CountingModule above never actually coerces a second rsh, so the
    // granted machine must come back to the pool after the appl's timeout,
    // not strand forever.
    let opts = ClusterOptions {
        seed: 4,
        machines: (0..2)
            .map(|i| resourcebroker::proto::MachineAttrs::public_linux(format!("n{i:02}")))
            .collect(),
        ..Default::default()
    };
    let mut c = build_cluster(opts);
    let mut registry = ModuleRegistry::standard();
    registry.register(Arc::new(CountingModule {
        grows: Arc::new(AtomicUsize::new(0)),
    }));
    c.modules = Arc::new(registry);
    c.settle();
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=1)(adaptive=1)(module="future-sys")"#.into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 500 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    // Wait past the 20 s grow-lapse timeout.
    c.world.run_until(SimTime(40_000_000));
    assert!(c.world.trace().count("appl.module.grow-lapsed") >= 1);
    assert!(c.world.trace().count("broker.freed") >= 1);
}
