//! Failure injection: machine crashes, daemon deaths, and job deaths under
//! broker management. The broker runs at user level; the paper argues it
//! "does not compromise the security of the networked machines even if it
//! malfunctions" — here we check the complementary property: the cluster
//! recovers from component failures.

use resourcebroker::broker::{build_standard_cluster, Cluster, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, TaskBag};
use resourcebroker::proto::{CommandSpec, ExitStatus, Signal};
use resourcebroker::simcore::{Duration, SimTime};

const FAR: SimTime = SimTime(3_600_000_000);

fn cluster(n: usize, seed: u64) -> Cluster {
    let mut c = build_standard_cluster(n, seed);
    c.settle();
    c
}

#[test]
fn machine_crash_kills_worker_and_job_recovers_via_timeout() {
    let mut c = cluster(4, 61);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Finite(vec![4_000; 6]),
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                task_timeout: Some(Duration::from_secs(10)),
            }))),
        },
    );
    // Wait until both workers have *joined the master* and hold tasks.
    let ok = c.world.run_until_pred(SimTime(30_000_000), |w| {
        w.trace().count("calypso.worker.joined") == 2
    });
    assert!(ok);
    c.world.run_until(c.world.now() + Duration::from_secs(1));
    // Power off one worker's machine: the worker dies mid-task without any
    // graceful deregistration.
    let victim_machine = c
        .world
        .proc_machine(c.world.procs_named("calypso-worker")[0])
        .unwrap();
    c.world.set_machine_up(victim_machine, false);
    // Eager scheduling's task timeout recovers the lost task; the job
    // still completes on the surviving worker.
    c.world.run_until_pred(FAR, |w| !w.alive(appl));
    assert_eq!(c.world.exit_status(appl), Some(ExitStatus::Success));
    assert!(c.world.trace().count("calypso.task.timeout") >= 1);
    let complete = c.world.trace().last("calypso.complete").unwrap();
    assert!(complete.detail.contains("results=6"));
}

#[test]
fn daemon_killed_repeatedly_is_always_respawned() {
    let mut c = cluster(3, 62);
    for round in 0..3 {
        let daemons = c.world.procs_named("rb-daemon");
        assert_eq!(daemons.len(), 3, "round {round}");
        c.world.kill_from_harness(daemons[1], Signal::Kill);
        // First the kill lands...
        let died = c
            .world
            .run_until_pred(SimTime(c.world.now().as_micros() + 1_000_000), |w| {
                w.procs_named("rb-daemon").len() == 2
            });
        assert!(died, "kill did not land in round {round}");
        // ...then, within the liveness window, the broker respawns.
        let ok = c
            .world
            .run_until_pred(SimTime(c.world.now().as_micros() + 60_000_000), |w| {
                w.procs_named("rb-daemon").len() == 3
            });
        assert!(ok, "daemon not respawned in round {round}");
    }
    assert!(c.world.trace().count("broker.daemon.lost") >= 3);
}

#[test]
fn crashed_machine_rejoins_the_pool_when_restored() {
    let mut c = cluster(2, 63);
    let m1 = c.machines[1];
    c.world.set_machine_up(m1, false);
    c.world.run_until(c.world.now() + Duration::from_secs(30));
    assert_eq!(c.world.procs_named("rb-daemon").len(), 1);

    // While down, allocation requests for it fail over or get denied —
    // and the broker keeps retrying the daemon spawn.
    c.world.set_machine_up(m1, true);
    let ok = c
        .world
        .run_until_pred(SimTime(c.world.now().as_micros() + 120_000_000), |w| {
            w.procs_named("rb-daemon").len() == 2
        });
    assert!(ok, "daemon not respawned after machine restore");

    // The machine is usable again.
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "u".into(),
            run: JobRun::Remote {
                host: "n01".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    assert_eq!(c.await_appl(appl, FAR), Some(ExitStatus::Success));
}

#[test]
fn job_root_crash_releases_all_its_machines() {
    let mut c = cluster(4, 64);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=3)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 800 },
                desired_workers: 3,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    let ok = c.world.run_until_pred(SimTime(30_000_000), |w| {
        w.procs_named("calypso-worker").len() == 3
    });
    assert!(ok);

    // Kill the master outright; the appl notices its root died, shuts the
    // sub-appls down (which SIGKILL their children), and reports JobDone.
    let master = c.world.procs_named("calypso-master")[0];
    c.world.kill_from_harness(master, Signal::Kill);
    c.world.run_until_pred(FAR, |w| !w.alive(appl));
    c.world.run_until(c.world.now() + Duration::from_secs(5));
    assert!(c.world.procs_named("calypso-worker").is_empty());
    assert!(c.world.procs_named("sub-appl").is_empty());
    assert!(c.world.trace().count("broker.job.done") >= 1);

    // The machines are immediately reusable by a new job.
    let appl2 = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "v".into(),
            run: JobRun::Remote {
                host: "anylinux".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    assert_eq!(c.await_appl(appl2, FAR), Some(ExitStatus::Success));
}

#[test]
fn rsh_prime_times_out_when_appl_vanishes() {
    // An orphaned managed process whose appl has died: its rsh' gets no
    // answer and must fail after the timeout instead of hanging forever.
    let mut c = cluster(3, 65);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 800 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    let ok = c.world.run_until_pred(SimTime(30_000_000), |w| {
        w.procs_named("calypso-worker").len() == 1
    });
    assert!(ok);
    let master = c.world.procs_named("calypso-master")[0];

    // Kill the appl (not the job). The master keeps running, orphaned.
    c.world.kill_from_harness(appl, Signal::Kill);
    c.world.run_until(c.world.now() + Duration::from_secs(2));
    assert!(c.world.alive(master));

    // Nudge the orphaned master to grow: rsh' can't reach the dead appl
    // and gives up after its timeout; the master tolerates the failure.
    c.world.send_from_harness(
        master,
        resourcebroker::proto::Payload::Ctl(resourcebroker::proto::CtlMsg::GrowHint { count: 1 }),
    );
    c.world.run_until(c.world.now() + Duration::from_secs(60));
    assert!(c.world.trace().count("rsh.appl-timeout") >= 1);
    assert!(c.world.alive(master), "job survives its appl's death");
}

#[test]
fn machine_crash_while_allocated_does_not_wedge_the_broker() {
    // A machine dies while an adaptive job holds it AND a competing job is
    // waiting on its reclaim. The appl's release deadline reports it freed;
    // the broker re-runs the pending request on a healthy machine.
    let mut c = cluster(3, 66);
    let cal = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "cal".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 600 },
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                task_timeout: Some(Duration::from_secs(15)),
            }))),
        },
    );
    let ok = c.world.run_until_pred(SimTime(30_000_000), |w| {
        w.procs_named("calypso-worker").len() == 2
    });
    assert!(ok);
    // Crash one worker's machine outright.
    let victim = c
        .world
        .proc_machine(c.world.procs_named("calypso-worker")[0])
        .unwrap();
    c.world.set_machine_up(victim, false);
    c.world.run_until(c.world.now() + Duration::from_secs(2));

    // A batch job arrives; with one machine dead the broker must still be
    // able to serve it (reclaiming the surviving worker's machine if
    // needed, or waiting out the release deadline on the dead one).
    let seq = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "seq".into(),
            run: JobRun::Remote {
                host: "anylinux".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    let status = c.await_appl(seq, SimTime(c.world.now().as_micros() + 120_000_000));
    assert_eq!(status, Some(ExitStatus::Success), "broker wedged");
    assert!(c.world.alive(cal));
}

#[test]
fn batch_job_retries_allocation_when_granted_machine_is_dead() {
    // Crash a machine between the daemon's last report and the grant: the
    // appl's sub-appl rsh fails, and instead of failing the user's command
    // it asks the broker again and lands on a healthy machine.
    let mut c = cluster(3, 67);
    // Crash n01 abruptly: daemons report every 2 s, so for a short window
    // the broker still believes it is alive.
    c.world.set_machine_up(c.machines[1], false);
    let seq = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "seq".into(),
            run: JobRun::Remote {
                host: "anylinux".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    let status = c.await_appl(seq, FAR).unwrap();
    assert_eq!(status, ExitStatus::Success);
    // Either the broker never picked the dead machine (timing) or the
    // retry path rescued the job; in both cases the job succeeded. When a
    // retry happened, it is visible in the trace.
    let retried = c.world.trace().count("appl.alloc.retry");
    let failed_spawn = c.world.trace().count("appl.subappl.failed");
    assert_eq!(retried, failed_spawn, "every dead grant retried");
}
