//! Mechanism validation for the paper's Figure 5: the *default* behavior —
//! an intercepted `rsh` with a symbolic host name is redirected to a
//! machine selected at runtime, through the numbered step sequence the
//! paper diagrams, for every system that accepts anonymous machines.

use resourcebroker::broker::{build_standard_cluster, Cluster, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, PlindaConfig, PlindaServer, TaskBag};
use resourcebroker::proto::CommandSpec;
use resourcebroker::simcore::SimTime;

const FAR: SimTime = SimTime(3_600_000_000);

fn cluster(n: usize) -> Cluster {
    let mut c = build_standard_cluster(n, 31);
    c.settle();
    c
}

/// Figure 5's steps, by trace topic:
/// 1-2. the job's rsh' realizes a symbolic name and contacts the appl;
/// 3.   the appl asks the broker for a machine;
/// 4.   the broker grants one;
/// 5-7. the appl spawns a sub-appl there over the standard rsh;
/// 8-9. the sub-appl fetches and spawns the program;
/// 10.  the new process contacts its master and the job proceeds.
const FIGURE5: &[&str] = &[
    "rsh.intercept",
    "appl.default.redirect",
    "broker.grant",
    "subappl.start",
    "subappl.spawn",
];

#[test]
fn figure5_steps_for_calypso() {
    let mut c = cluster(3);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 500 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(20_000_000));
    let mut steps = FIGURE5.to_vec();
    steps.push("calypso.worker.joined");
    c.world.trace().check_order(&steps).unwrap();
    assert_eq!(c.world.procs_named("calypso-worker").len(), 1);
}

#[test]
fn figure5_steps_for_plinda() {
    let mut c = cluster(3);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(PlindaServer::new(PlindaConfig {
                tasks: vec![500; 4],
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                persistent: false,
            }))),
        },
    );
    c.world.run_until(SimTime(30_000_000));
    let mut steps = FIGURE5.to_vec();
    steps.push("plinda.worker.joined");
    c.world.trace().check_order(&steps).unwrap();
    // The bag-of-tasks job actually completes on its redirected worker.
    assert!(c
        .world
        .trace()
        .last("plinda.complete")
        .unwrap()
        .detail
        .contains("results=4"));
}

#[test]
fn figure5_steps_for_sequential_job() {
    let mut c = cluster(2);
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "u".into(),
            run: JobRun::Remote {
                host: "anyhost".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    let status = c.await_appl(appl, FAR).unwrap();
    assert!(status.is_success());
    // Sequential jobs skip the rsh' (the appl itself is the front end) but
    // go through allocation and sub-appl interposition.
    c.world
        .trace()
        .check_order(&["broker.grant", "subappl.start", "subappl.spawn"])
        .unwrap();
}

#[test]
fn redirect_is_invisible_to_the_job() {
    // The Calypso master asked for `anylinux`; the worker it got reports a
    // real host name; the master accepted it without any notion of the
    // broker: no refusal, no failed grow.
    let mut c = cluster(3);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 500 },
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(20_000_000));
    assert_eq!(c.world.trace().count("calypso.grow.failed"), 0);
    assert_eq!(c.world.procs_named("calypso-worker").len(), 2);
}

#[test]
fn dormant_after_setup_no_interaction_until_change() {
    // "From this point, until resources need to be reallocated, there is
    // no interaction between the job and ResourceBroker." After the grow
    // completes, no further broker traffic occurs while the job computes.
    let mut c = cluster(2);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 2_000 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(SimTime(15_000_000));
    let grants_before = c.world.trace().count("broker.grant");
    let reclaims_before = c.world.trace().count("broker.reclaim");
    // One quiet minute of computation.
    c.world.run_until(SimTime(75_000_000));
    assert_eq!(c.world.trace().count("broker.grant"), grants_before);
    assert_eq!(c.world.trace().count("broker.reclaim"), reclaims_before);
}
