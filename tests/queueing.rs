//! Batch-job queueing: when nothing is available (and policy cannot
//! reclaim), a non-adaptive job waits in the broker's queue — users can
//! "learn the status of queued jobs" — and is served FIFO as machines
//! free up.

use resourcebroker::broker::{
    build_cluster, Cluster, ClusterOptions, FifoPolicy, JobRequest, JobRun,
};
use resourcebroker::proto::{BrokerMsg, CommandSpec, ExitStatus, MachineAttrs, Payload, ProcId};
use resourcebroker::simcore::{Duration, SimTime};
use std::sync::Arc;
use std::sync::Mutex;

const FAR: SimTime = SimTime(3_600_000_000);

/// One public machine plus the user's workstation (out of pool).
fn tiny(seed: u64) -> Cluster {
    let opts = ClusterOptions {
        seed,
        machines: vec![
            MachineAttrs::private_linux("n00", "user"),
            MachineAttrs::public_linux("n01"),
        ],
        ..Default::default()
    };
    let mut c = build_cluster(opts);
    c.world.set_owner_present(c.machines[0], true);
    c.settle();
    c
}

fn loop_job(cpu_millis: u64) -> JobRequest {
    JobRequest {
        rsl: "(adaptive=0)".into(),
        user: "u".into(),
        run: JobRun::Remote {
            host: "anylinux".into(),
            cmd: CommandSpec::Loop { cpu_millis },
        },
    }
}

#[test]
fn batch_jobs_queue_and_run_in_fifo_order() {
    let mut c = tiny(71);
    // Three 3-second jobs for one machine: they must serialize in
    // submission order.
    let a = c.submit(c.machines[0], loop_job(3_000));
    c.world
        .run_until(c.world.now() + Duration::from_millis(200));
    let b = c.submit(c.machines[0], loop_job(3_000));
    c.world
        .run_until(c.world.now() + Duration::from_millis(200));
    let d = c.submit(c.machines[0], loop_job(3_000));

    // While A runs, B and D wait in the queue.
    c.world.run_until(c.world.now() + Duration::from_secs(2));
    assert!(c.world.alive(a) && c.world.alive(b) && c.world.alive(d));
    assert_eq!(c.world.trace().count("broker.queued"), 2);

    // All three eventually complete, in order.
    assert_eq!(c.await_appl(a, FAR), Some(ExitStatus::Success));
    let t_a = c.world.now();
    assert_eq!(c.await_appl(b, FAR), Some(ExitStatus::Success));
    let t_b = c.world.now();
    assert_eq!(c.await_appl(d, FAR), Some(ExitStatus::Success));
    let t_d = c.world.now();
    assert!(t_a < t_b && t_b < t_d);
    // Total ≈ 3 × (3 s + startup overheads): the machine was never shared.
    assert!(t_d.as_secs_f64() < 13.0, "end {}", t_d);
}

#[test]
fn queued_jobs_appear_in_cluster_status() {
    struct Query {
        broker: ProcId,
        lines: Arc<Mutex<Vec<String>>>,
    }
    impl resourcebroker::simnet::Behavior for Query {
        fn name(&self) -> &'static str {
            "query"
        }
        fn on_start(&mut self, ctx: &mut resourcebroker::simnet::Ctx<'_>) {
            let me = ctx.me();
            ctx.send(
                self.broker,
                Payload::Broker(BrokerMsg::QueryCluster { reply_to: me }),
            );
        }
        fn on_message(
            &mut self,
            ctx: &mut resourcebroker::simnet::Ctx<'_>,
            _from: ProcId,
            msg: Payload,
        ) {
            if let Payload::Broker(BrokerMsg::ClusterStatus { lines }) = msg {
                *self.lines.lock().unwrap() = lines;
                ctx.exit(ExitStatus::Success);
            }
        }
    }

    let mut c = tiny(72);
    c.submit(c.machines[0], loop_job(30_000));
    c.world.run_until(c.world.now() + Duration::from_secs(2));
    c.submit(c.machines[0], loop_job(1_000));
    c.world.run_until(c.world.now() + Duration::from_secs(2));

    let lines = Arc::new(Mutex::new(Vec::new()));
    c.world.spawn_user(
        c.machines[0],
        Box::new(Query {
            broker: c.broker,
            lines: lines.clone(),
        }),
        resourcebroker::simnet::ProcEnv::system("user"),
    );
    c.world.run_until(c.world.now() + Duration::from_secs(1));
    let lines = lines.lock().unwrap();
    assert!(
        lines.iter().any(|l| l.starts_with("queued:")),
        "no queued line in {lines:?}"
    );
}

#[test]
fn queued_request_dropped_when_its_job_dies() {
    let mut c = tiny(73);
    let a = c.submit(c.machines[0], loop_job(30_000));
    c.world.run_until(c.world.now() + Duration::from_secs(2));
    let b = c.submit(c.machines[0], loop_job(1_000));
    c.world.run_until(c.world.now() + Duration::from_secs(2));
    // Kill the queued job's appl; when A finishes, the machine must not be
    // granted to a ghost.
    c.world
        .kill_from_harness(b, resourcebroker::proto::Signal::Kill);
    assert_eq!(c.await_appl(a, FAR), Some(ExitStatus::Success));
    c.world.run_until(c.world.now() + Duration::from_secs(5));
    // n01 is free again (no stranded allocation).
    assert_eq!(c.world.app_procs_on(c.machines[1]), 0);
}

#[test]
fn fifo_policy_with_queueing_disabled_denies_outright() {
    // queue_batch_jobs can be turned off: then a busy cluster denies batch
    // jobs immediately (the pre-queueing behavior).
    use resourcebroker::broker::{Broker, BrokerConfig, ModuleRegistry, RshPrimeInstaller};
    use resourcebroker::simnet::{BasePrograms, FactoryChain, ProcEnv, RshBinding, WorldBuilder};
    let mut bld = WorldBuilder::new()
        .seed(74)
        .default_remote_binding(RshBinding::Broker)
        .factory(
            FactoryChain::new()
                .with(BasePrograms)
                .with(resourcebroker::parsys::ParsysPrograms)
                .with(resourcebroker::broker::BrokerPrograms),
        )
        .rsh_prime(RshPrimeInstaller);
    let m0 = bld.machine(MachineAttrs::private_linux("n00", "user"));
    let _m1 = bld.machine(MachineAttrs::public_linux("n01"));
    let mut world = bld.build();
    let broker = world.spawn_user(
        m0,
        Box::new(Broker::new(BrokerConfig {
            policy: Box::new(FifoPolicy),
            spawn_daemons: true,
            queue_batch_jobs: false,
        })),
        ProcEnv::system("rb"),
    );
    world.set_owner_present(m0, true);
    world.run_until(SimTime(1_000_000));
    let modules = std::sync::Arc::new(ModuleRegistry::standard());

    let a = resourcebroker::broker::submit_job(&mut world, m0, broker, &modules, loop_job(30_000));
    world.run_until(world.now() + Duration::from_secs(2));
    let b = resourcebroker::broker::submit_job(&mut world, m0, broker, &modules, loop_job(1_000));
    world.run_until_pred(FAR, |w| !w.alive(b));
    assert_eq!(world.exit_status(b), Some(ExitStatus::Failure(1)));
    assert!(world.alive(a));
}
