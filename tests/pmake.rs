//! `pmake` end-to-end: dependency-ordered distributed builds, bounded
//! parallelism, failure handling — and the paper's point that plain
//! parallelizable tools gain just-in-time placement under the broker's
//! default path with zero modification.

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{MakeRule, ParsysPrograms, Pmake, PmakeConfig};
use resourcebroker::proto::ExitStatus;
use resourcebroker::simcore::SimTime;
use resourcebroker::simnet::{BasePrograms, FactoryChain, ProcEnv, World, WorldBuilder};

const FAR: SimTime = SimTime(3_600_000_000);

fn plain_world(publics: usize, seed: u64) -> World {
    let mut b = WorldBuilder::new()
        .seed(seed)
        .factory(FactoryChain::new().with(BasePrograms).with(ParsysPrograms));
    b.standard_lab(publics + 1);
    b.build()
}

/// A classic diamond: lib.o and app.o build in parallel, link needs both.
fn diamond(cpu: u64) -> Vec<MakeRule> {
    vec![
        MakeRule::new("config.h", &[], cpu / 4),
        MakeRule::new("lib.o", &["config.h"], cpu),
        MakeRule::new("app.o", &["config.h"], cpu),
        MakeRule::new("app", &["lib.o", "app.o"], cpu / 2),
    ]
}

fn run_pmake(world: &mut World, cfg: PmakeConfig) -> (ExitStatus, f64) {
    let n00 = world.machine_by_host("n00").unwrap();
    let t0 = world.now();
    let p = world.spawn_user(
        n00,
        Box::new(Pmake::new(cfg)),
        ProcEnv::user_standard("dev"),
    );
    world.run_until_pred(FAR, |w| !w.alive(p));
    (
        world.exit_status(p).expect("pmake finished"),
        (world.now() - t0).as_secs_f64(),
    )
}

#[test]
fn diamond_builds_in_dependency_order() {
    let mut world = plain_world(3, 81);
    let (status, _) = run_pmake(
        &mut world,
        PmakeConfig {
            rules: diamond(2_000),
            goal: "app".into(),
            jobs: 4,
            hostfile: vec!["n01".into(), "n02".into(), "n03".into()],
        },
    );
    assert_eq!(status, ExitStatus::Success);
    // config.h strictly before the objects; both objects before the link.
    let t = world.trace();
    let idx = |needle: &str| {
        t.events()
            .iter()
            .position(|e| e.topic == "pmake.built" && e.detail == needle)
            .unwrap_or_else(|| panic!("{needle} never built"))
    };
    assert!(idx("config.h") < idx("lib.o"));
    assert!(idx("config.h") < idx("app.o"));
    assert!(idx("lib.o") < idx("app"));
    assert!(idx("app.o") < idx("app"));
}

#[test]
fn parallel_objects_overlap_with_enough_jobs() {
    // With -j2 the two 4s object files overlap; with -j1 they serialize.
    let elapsed = |jobs: u32| {
        let mut world = plain_world(2, 82);
        let (status, secs) = run_pmake(
            &mut world,
            PmakeConfig {
                rules: diamond(4_000),
                goal: "app".into(),
                jobs,
                hostfile: vec!["n01".into(), "n02".into()],
            },
        );
        assert_eq!(status, ExitStatus::Success);
        secs
    };
    let serial = elapsed(1);
    let parallel = elapsed(2);
    assert!(
        serial - parallel > 3.0,
        "-j2 {parallel}s should beat -j1 {serial}s by ~4s"
    );
}

#[test]
fn failing_recipe_aborts_the_build() {
    let mut world = plain_world(2, 83);
    let rules = vec![
        MakeRule::new("good.o", &[], 1_000),
        MakeRule::new("bad.o", &[], 500).failing(),
        MakeRule::new("app", &["good.o", "bad.o"], 500),
    ];
    let (status, _) = run_pmake(
        &mut world,
        PmakeConfig {
            rules,
            goal: "app".into(),
            jobs: 2,
            hostfile: vec!["n01".into(), "n02".into()],
        },
    );
    assert_eq!(status, ExitStatus::Failure(2));
    // The goal was never attempted after the failure.
    assert!(world
        .trace()
        .events()
        .iter()
        .all(|e| !(e.topic == "pmake.launch" && e.detail.starts_with("app "))));
    assert!(world.trace().count("pmake.recipe-failed") == 1);
}

#[test]
fn missing_rule_and_cycle_fail_fast() {
    let mut world = plain_world(1, 84);
    let (status, secs) = run_pmake(
        &mut world,
        PmakeConfig {
            rules: vec![MakeRule::new("app", &["ghost"], 100)],
            goal: "app".into(),
            jobs: 1,
            hostfile: vec!["n01".into()],
        },
    );
    assert_eq!(status, ExitStatus::Failure(2));
    assert!(secs < 0.1, "failed fast, not after launching ({secs}s)");

    let (status, _) = run_pmake(
        &mut world,
        PmakeConfig {
            rules: vec![
                MakeRule::new("a", &["b"], 100),
                MakeRule::new("b", &["a"], 100),
            ],
            goal: "a".into(),
            jobs: 1,
            hostfile: vec!["n01".into()],
        },
    );
    assert_eq!(status, ExitStatus::Failure(2));
}

#[test]
fn pmake_under_the_broker_uses_just_in_time_machines() {
    // The same build description, hostfile = ["anylinux"]: every recipe is
    // redirected to a broker-chosen machine; recipes spread across the
    // cluster without naming a single host.
    let mut c = build_standard_cluster(4, 85);
    c.settle();
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "dev".into(),
            run: JobRun::Root(Box::new(Pmake::new(PmakeConfig {
                rules: diamond(2_000),
                goal: "app".into(),
                jobs: 3,
                hostfile: vec!["anylinux".into()],
            }))),
        },
    );
    let status = c.await_appl(appl, FAR).unwrap();
    assert_eq!(status, ExitStatus::Success);
    assert!(c.world.trace().count("broker.grant") >= 4);
    // The two parallel objects really did land on distinct machines.
    let launches: Vec<&str> = c
        .world
        .trace()
        .events()
        .iter()
        .filter(|e| e.topic == "pmake.launch")
        .map(|e| e.detail.as_str())
        .collect();
    assert!(launches.iter().all(|l| l.contains("anylinux")));
    let loop_machines: std::collections::HashSet<String> = c
        .world
        .trace()
        .events()
        .iter()
        .filter(|e| e.topic == "proc.start" && e.detail.contains(" loop on "))
        .map(|e| e.detail.split(" on ").nth(1).unwrap().to_string())
        .collect();
    assert!(
        loop_machines.len() >= 2,
        "recipes spread over machines: {loop_machines:?}"
    );
}
