//! Reallocation mechanics across job types: the signal/grace/kill path for
//! default jobs, the module `shrink` path for PVM/LAM jobs, and the grace
//! period's SIGKILL backstop for processes that ignore SIGTERM.

use resourcebroker::broker::{build_cluster, Cluster, ClusterOptions, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, PvmMaster, PvmMasterConfig, TaskBag};
use resourcebroker::proto::{CommandSpec, ExitStatus, MachineAttrs, Payload, ProcId, Signal};
use resourcebroker::simcore::{Duration, SimTime};
use resourcebroker::simnet::{Behavior, Ctx};

const FAR: SimTime = SimTime(3_600_000_000);

/// Testbed where the user's workstation is out of the pool.
fn pooled(publics: usize, seed: u64) -> Cluster {
    let mut machines = vec![MachineAttrs::private_linux("n00", "user")];
    machines.extend((1..=publics).map(|i| MachineAttrs::public_linux(format!("n{i:02}"))));
    let opts = ClusterOptions {
        seed,
        machines,
        ..Default::default()
    };
    let mut c = build_cluster(opts);
    // Post-run trace invariants come from the rb-analyze linter; each test
    // runs them via `run_trace_checks` after its scenario completes.
    rb_analyze::install_linter(&mut c.world);
    c.world.set_owner_present(c.machines[0], true);
    c.settle();
    c
}

fn seq_job(host: &str, cmd: CommandSpec) -> JobRequest {
    JobRequest {
        rsl: "(adaptive=0)".into(),
        user: "seq".into(),
        run: JobRun::Remote {
            host: host.into(),
            cmd,
        },
    }
}

#[test]
fn reclaim_from_pvm_job_goes_through_module_shrink() {
    // A PVM job (module path) holds both public machines; a sequential job
    // arrives. The broker reclaims one; for module jobs the appl runs
    // `pvm_shrink <host>`, which makes the master delete the host and the
    // slave exit gracefully — no signal needed.
    let mut c = pooled(2, 51);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=2)(adaptive=1)(module="pvm")"#.into(),
            user: "pvm-user".into(),
            run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                initial_hosts: vec!["anylinux".into()],
                ..Default::default()
            }))),
        },
    );
    let ok = c
        .world
        .run_until_pred(SimTime(60_000_000), |w| w.procs_named("pvmd").len() == 1);
    assert!(ok, "PVM VM never reached 1 slave");
    // Grow by one more (a pvm_addhosts() call from the application); the
    // previous symbolic add has resolved, so the name is fresh again.
    let master = c.world.procs_named("pvm-master")[0];
    c.world.send_from_harness(
        master,
        Payload::Ctl(resourcebroker::proto::CtlMsg::GrowHint { count: 1 }),
    );
    let ok = c
        .world
        .run_until_pred(SimTime(120_000_000), |w| w.procs_named("pvmd").len() == 2);
    assert!(ok, "PVM VM never reached 2 slaves");

    let seq = c.submit(c.machines[0], seq_job("anylinux", CommandSpec::Null));
    let status = c.await_appl(seq, FAR).unwrap();
    assert_eq!(status, ExitStatus::Success);
    c.world
        .trace()
        .check_order(&[
            "broker.reclaim",
            "appl.release",
            "module.pvm.shrink",
            "pvm.delete",
            "appl.shrink.done",
            "broker.freed",
            "broker.grant",
        ])
        .unwrap();
    // One slave remains; the VM kept computing.
    assert_eq!(c.world.procs_named("pvmd").len(), 1);
    assert_eq!(c.world.procs_named("pvm-master").len(), 1);
    c.world.run_trace_checks().unwrap();
}

/// A worker that ignores SIGTERM entirely (a buggy or hostile program).
struct StubbornWorker;

impl Behavior for StubbornWorker {
    fn name(&self) -> &'static str {
        "stubborn"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.detach();
        ctx.cpu_burst(Duration::from_secs(100_000));
    }
    fn on_signal(&mut self, _ctx: &mut Ctx<'_>, _sig: Signal) {
        // Ignore everything catchable.
    }
}

#[test]
fn grace_period_then_sigkill_for_stubborn_processes() {
    // Run a stubborn program through the broker on the only public
    // machine, then force a reallocation: the sub-appl's SIGTERM is
    // ignored, the grace period expires, SIGKILL wins.
    struct StubbornFactory;
    impl resourcebroker::simnet::ProgramFactory for StubbornFactory {
        fn build(&self, cmd: &CommandSpec) -> Option<Box<dyn Behavior>> {
            matches!(cmd, CommandSpec::Custom { name, .. } if name == "stubborn")
                .then(|| Box::new(StubbornWorker) as Box<dyn Behavior>)
        }
    }

    // Build a testbed whose factory also knows the stubborn program.
    use resourcebroker::simnet::{BasePrograms, FactoryChain, ProcEnv, RshBinding, WorldBuilder};
    let mut b = WorldBuilder::new()
        .seed(5)
        .default_remote_binding(RshBinding::Broker)
        .factory(
            FactoryChain::new()
                .with(BasePrograms)
                .with(resourcebroker::parsys::ParsysPrograms)
                .with(resourcebroker::broker::BrokerPrograms)
                .with(StubbornFactory),
        )
        .rsh_prime(resourcebroker::broker::RshPrimeInstaller);
    let m0 = b.machine(MachineAttrs::private_linux("n00", "user"));
    let _m1 = b.machine(MachineAttrs::public_linux("n01"));
    let mut world = b.build();
    rb_analyze::install_linter(&mut world);
    let broker = world.spawn_user(
        m0,
        Box::new(resourcebroker::broker::Broker::new(
            resourcebroker::broker::BrokerConfig {
                // Demand-driven reclaim: the single-machine victim is fair
                // game (this test exercises the signal path, not policy).
                policy: Box::new(resourcebroker::broker::DefaultPolicy::with_rule(
                    resourcebroker::broker::ReclaimRule::Demand,
                )),
                spawn_daemons: true,
                queue_batch_jobs: true,
            },
        )),
        ProcEnv::system("rb"),
    );
    world.set_owner_present(m0, true);
    world.run_until(SimTime(1_000_000));

    let modules = std::sync::Arc::new(resourcebroker::broker::ModuleRegistry::standard());
    // The stubborn adaptive job occupies n01.
    let stubborn_appl = resourcebroker::broker::submit_job(
        &mut world,
        m0,
        broker,
        &modules,
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "a".into(),
            run: JobRun::Remote {
                host: "anylinux".into(),
                cmd: CommandSpec::Custom {
                    name: "stubborn".into(),
                    arg: 0,
                },
            },
        },
    );
    world.run_until(SimTime(10_000_000));
    assert_eq!(world.procs_named("stubborn").len(), 1);

    // A competing job triggers a reclaim of the stubborn job's machine.
    let seq = resourcebroker::broker::submit_job(
        &mut world,
        m0,
        broker,
        &modules,
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "b".into(),
            run: JobRun::Remote {
                host: "anylinux".into(),
                cmd: CommandSpec::Null,
            },
        },
    );
    let t0 = world.now();
    world.run_until_pred(FAR, |w| !w.alive(seq));
    assert_eq!(world.exit_status(seq), Some(ExitStatus::Success));
    let elapsed = (world.now() - t0).as_secs_f64();
    // The stubborn process burned the full 2 s grace period before SIGKILL.
    assert!(elapsed >= 2.0, "elapsed {elapsed}");
    world
        .trace()
        .check_order(&[
            "subappl.release",
            "subappl.grace-expired",
            "subappl.released",
        ])
        .unwrap();
    assert!(world.procs_named("stubborn").is_empty());
    let _ = stubborn_appl;
    world.run_trace_checks().unwrap();
}

#[test]
fn victim_job_recovers_lost_work_after_eviction() {
    // Calypso with a finite bag loses a machine mid-computation; eager
    // scheduling re-executes the interrupted task and the job still
    // completes with all results.
    let mut c = pooled(2, 53);
    let cal_appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "cal".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Finite(vec![3_000; 8]),
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    let ok = c.world.run_until_pred(SimTime(30_000_000), |w| {
        w.procs_named("calypso-worker").len() == 2
    });
    assert!(ok);

    // Take one machine away for a sequential job.
    let seq = c.submit(c.machines[0], seq_job("anylinux", CommandSpec::Null));
    assert_eq!(c.await_appl(seq, FAR), Some(ExitStatus::Success));
    assert!(c.world.trace().count("calypso.task.requeue") >= 1);

    // Calypso still finishes every task.
    c.world.run_until_pred(FAR, |w| !w.alive(cal_appl));
    assert_eq!(c.world.exit_status(cal_appl), Some(ExitStatus::Success));
    let complete = c.world.trace().last("calypso.complete").unwrap();
    assert!(complete.detail.contains("results=8"), "{}", complete.detail);
    c.world.run_trace_checks().unwrap();
}

#[test]
fn released_machine_returns_to_victim_when_requester_finishes() {
    // After the sequential job ends, the broker offers the machine back to
    // the adaptive job, which regrows to its desired size.
    let mut c = pooled(2, 54);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "cal".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 700 },
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    let ok = c.world.run_until_pred(SimTime(30_000_000), |w| {
        w.procs_named("calypso-worker").len() == 2
    });
    assert!(ok);

    let seq = c.submit(
        c.machines[0],
        seq_job("anylinux", CommandSpec::Loop { cpu_millis: 5_000 }),
    );
    c.world
        .run_until_pred(FAR, |w| w.procs_named("calypso-worker").len() == 1);
    assert_eq!(c.await_appl(seq, FAR), Some(ExitStatus::Success));
    // The machine flows back: two workers again.
    let regrown = c
        .world
        .run_until_pred(FAR, |w| w.procs_named("calypso-worker").len() == 2);
    assert!(regrown, "calypso never regrew");
    assert!(c.world.trace().count("broker.offer") >= 1);
    c.world.run_trace_checks().unwrap();
}

#[test]
fn concurrent_reallocations_complete_independently() {
    // Two sequential jobs arrive near-simultaneously; both require
    // reclaims from the same Calypso job; both must be served.
    let mut c = pooled(3, 55);
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=3)(adaptive=1)".into(),
            user: "cal".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 700 },
                desired_workers: 3,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    let ok = c.world.run_until_pred(SimTime(60_000_000), |w| {
        w.procs_named("calypso-worker").len() == 3
    });
    assert!(ok);

    let mut appls: Vec<ProcId> = Vec::new();
    for _ in 0..2 {
        appls.push(c.submit(c.machines[0], seq_job("anylinux", CommandSpec::Null)));
        c.world.run_until(c.world.now() + Duration::from_millis(50));
    }
    for appl in appls {
        assert_eq!(c.await_appl(appl, FAR), Some(ExitStatus::Success));
    }
    assert!(c.world.trace().count("broker.reclaim") >= 2);
    c.world.run_trace_checks().unwrap();
}
