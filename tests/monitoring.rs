//! The resource-management layer's monitoring duties: keyboard/mouse
//! activity detection, the `rbstat` user tool, and daemon report plumbing.

use resourcebroker::broker::{build_cluster, query_status, ClusterOptions, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, TaskBag};
use resourcebroker::proto::MachineAttrs;
use resourcebroker::simcore::{Duration, SimTime};

#[test]
fn keyboard_activity_on_private_machine_evicts_adaptive_job() {
    // No login event — just keystrokes. The daemon's keyboard/mouse
    // monitoring must be enough to trigger eviction.
    let opts = ClusterOptions {
        seed: 91,
        machines: vec![
            MachineAttrs::public_linux("n00"),
            MachineAttrs::private_linux("p01", "bob"),
            MachineAttrs::public_linux("n02"),
        ],
        ..Default::default()
    };
    let mut c = build_cluster(opts);
    c.settle();
    let p01 = c.world.machine_by_host("p01").unwrap();

    // Busy up the public machines so the adaptive job lands on p01.
    for host in ["n00", "n02"] {
        let m = c.world.machine_by_host(host).unwrap();
        c.world.spawn_user(
            m,
            Box::new(resourcebroker::simnet::LoopProg::new(600_000)),
            resourcebroker::simnet::ProcEnv::user_standard("x"),
        );
    }
    c.world.run_until(SimTime(5_000_000));
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "carol".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 400 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    let ok = c.world.run_until_pred(SimTime(30_000_000), |w| {
        w.procs_named("calypso-worker").len() == 1
    });
    assert!(ok);
    let worker = c.world.procs_named("calypso-worker")[0];
    assert_eq!(c.world.proc_machine(worker), Some(p01));

    // Bob touches the keyboard (no login): next daemon poll reports the
    // activity and the broker evicts.
    c.world.touch_console(p01);
    c.world.run_until(c.world.now() + Duration::from_secs(10));
    assert!(c.world.procs_named("calypso-worker").is_empty());
    assert!(c.world.trace().count("broker.evict.owner") >= 1);
    assert_eq!(c.world.app_procs_on(p01), 0);
}

#[test]
fn rbstat_reports_machines_jobs_and_daemons() {
    let mut c = resourcebroker::broker::build_standard_cluster(3, 92);
    c.settle();
    c.submit(
        c.machines[0],
        JobRequest {
            rsl: "+(count>=1)(adaptive=1)".into(),
            user: "carol".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 500 },
                desired_workers: 1,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    c.world.run_until(c.world.now() + Duration::from_secs(10));

    let lines = query_status(&mut c);
    assert_eq!(
        lines.iter().filter(|l| l.starts_with('n')).count(),
        3,
        "one line per machine: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("user=carol")),
        "job line present: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("Allocated")),
        "allocation visible: {lines:?}"
    );
}

#[test]
fn rbstat_times_out_against_a_dead_broker() {
    let mut c = resourcebroker::broker::build_standard_cluster(2, 93);
    c.settle();
    c.world
        .kill_from_harness(c.broker, resourcebroker::proto::Signal::Kill);
    c.world.run_until(c.world.now() + Duration::from_secs(1));
    let lines = query_status(&mut c);
    assert!(lines.is_empty());
    assert!(c.world.trace().count("rbstat.timeout") >= 1);
}
