//! The paper's "self-scheduling" adaptivity: a PVM *application* that calls
//! `pvm_addhosts()` with a symbolic name whenever its backlog outgrows its
//! machines. Unmodified, it fails to grow under plain rsh; under the broker
//! it transparently acquires machines just in time and finishes faster.

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{ParsysPrograms, PvmApp, PvmAppConfig, PvmMaster, PvmMasterConfig};
use resourcebroker::proto::{ExitStatus, ProcId};
use resourcebroker::simcore::{Duration, SimTime};
use resourcebroker::simnet::{BasePrograms, Behavior, Ctx, FactoryChain, ProcEnv, WorldBuilder};

const FAR: SimTime = SimTime(3_600_000_000);

/// A job root that starts a master pvmd and then the self-scheduling app
/// as a sibling (the way a user runs `pvm` and then their program).
struct PvmJob {
    app_cfg: PvmAppConfig,
    app: Option<ProcId>,
}

impl Behavior for PvmJob {
    fn name(&self) -> &'static str {
        "pvm-job"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.spawn_local(Box::new(PvmMaster::new(PvmMasterConfig::default())));
        ctx.set_timer(Duration::from_millis(300));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: resourcebroker::proto::TimerToken) {
        if self.app.is_none() {
            let app = ctx.spawn_local(Box::new(PvmApp::new(self.app_cfg.clone())));
            self.app = Some(app);
        }
    }
    fn on_child_exit(&mut self, ctx: &mut Ctx<'_>, child: ProcId, status: ExitStatus) {
        if self.app == Some(child) {
            ctx.exit(status);
        }
    }
}

fn app_cfg() -> PvmAppConfig {
    PvmAppConfig {
        work: vec![800; 40],
        tasks_per_host: 2,
        grow_backlog_per_host: 6,
        max_hosts: 4,
    }
}

#[test]
fn self_scheduling_app_without_broker_stays_on_one_host() {
    // Plain rsh world: `pvm_addhosts("anylinux")` fails (unknown host);
    // the app tolerates it and grinds through on the master's machine.
    let mut b = WorldBuilder::new()
        .seed(31)
        .factory(FactoryChain::new().with(BasePrograms).with(ParsysPrograms));
    let ms = b.standard_lab(4);
    let mut world = b.build();
    let job = world.spawn_user(
        ms[0],
        Box::new(PvmJob {
            app_cfg: app_cfg(),
            app: None,
        }),
        ProcEnv::user_standard("u"),
    );
    world.run_until_pred(FAR, |w| !w.alive(job));
    assert_eq!(world.exit_status(job), Some(ExitStatus::Success));
    assert!(world.trace().count("pvm.app.addhosts") >= 1);
    assert_eq!(world.procs_named("pvmd").len(), 0, "no slaves ever joined");
    // 40 x 0.8s on one machine: at least 32 seconds.
    assert!(world.now().as_secs_f64() > 30.0);
}

#[test]
fn self_scheduling_app_under_broker_grows_and_finishes_faster() {
    let mut c = build_standard_cluster(4, 31);
    c.settle();
    let t0 = c.world.now();
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=1)(adaptive=1)(module="pvm")"#.into(),
            user: "u".into(),
            run: JobRun::Root(Box::new(PvmJob {
                app_cfg: app_cfg(),
                app: None,
            })),
        },
    );
    let status = c.await_appl(appl, FAR).unwrap();
    assert_eq!(status, ExitStatus::Success);
    let elapsed = (c.world.now() - t0).as_secs_f64();

    // The backlog-driven addhosts went through the module path and the VM
    // actually grew.
    assert!(c.world.trace().count("pvm.app.addhosts") >= 1);
    assert!(c.world.trace().count("module.pvm.grow") >= 1);
    assert!(c.world.trace().count("pvm.slave.accepted") >= 1);
    assert!(
        c.world
            .trace()
            .with_topic("pvm.app.vm-size")
            .next()
            .is_some(),
        "the app observed the asynchronous growth"
    );
    // 32 CPU-seconds spread over >= 2 hosts: well under the 1-host time.
    assert!(
        elapsed < 26.0,
        "adaptive run took {elapsed}s; should beat the ~33s single-host grind"
    );
}
