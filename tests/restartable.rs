//! `(start_script=...)` semantics end-to-end: the appl restarts a job
//! whose root dies abnormally, and a persistent PLinda server recovers its
//! tuple space from the checkpoint — crash-through-completion.

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{PlindaConfig, PlindaServer};
use resourcebroker::proto::{ExitStatus, Signal};
use resourcebroker::simcore::SimTime;

const FAR: SimTime = SimTime(3_600_000_000);

fn plinda_cfg(tasks: Vec<u64>) -> PlindaConfig {
    PlindaConfig {
        tasks,
        desired_workers: 2,
        hostfile: vec!["anylinux".into()],
        persistent: true,
    }
}

#[test]
fn crashed_persistent_plinda_job_restarts_and_completes() {
    let mut c = build_standard_cluster(4, 101);
    c.settle();
    // First incarnation seeds 8 tasks; restarts seed nothing and recover
    // everything from the checkpoint.
    let mut first = true;
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"+(count>=2)(adaptive=1)(start_script="run-plinda.sh")"#.into(),
            user: "pat".into(),
            run: JobRun::Script {
                make: Box::new(move || {
                    let tasks = if first { vec![2_000; 8] } else { vec![] };
                    first = false;
                    Box::new(PlindaServer::new(plinda_cfg(tasks)))
                }),
                max_restarts: 2,
            },
        },
    );
    // Let it get going, then murder the server mid-computation.
    let ok = c.world.run_until_pred(SimTime(60_000_000), |w| {
        w.trace().count("plinda.worker.joined") >= 2
    });
    assert!(ok);
    c.world
        .run_until(c.world.now() + resourcebroker::simcore::Duration::from_secs(1));
    let server = c.world.procs_named("plinda-server")[0];
    c.world.kill_from_harness(server, Signal::Kill);

    // The appl restarts it; the new incarnation recovers and finishes.
    let status = c.await_appl(appl, FAR).expect("job finished");
    assert_eq!(status, ExitStatus::Success);
    assert!(c.world.trace().count("appl.restart") >= 1);
    assert!(c.world.trace().count("plinda.recover") >= 1);
    let complete = c.world.trace().last("plinda.complete").unwrap();
    assert!(complete.detail.contains("results=8"), "{}", complete.detail);
}

#[test]
fn restart_budget_is_finite() {
    // A root that always crashes: after max_restarts the appl gives up and
    // reports the failure.
    use resourcebroker::simnet::{Behavior, Ctx};
    struct Crasher;
    impl Behavior for Crasher {
        fn name(&self) -> &'static str {
            "crasher"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.exit(ExitStatus::Failure(7));
        }
    }
    let mut c = build_standard_cluster(2, 102);
    c.settle();
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"(start_script="crash.sh")"#.into(),
            user: "u".into(),
            run: JobRun::Script {
                make: Box::new(|| Box::new(Crasher)),
                max_restarts: 3,
            },
        },
    );
    let status = c.await_appl(appl, FAR).unwrap();
    assert_eq!(status, ExitStatus::Failure(7));
    assert_eq!(c.world.trace().count("appl.restart"), 3);
}

#[test]
fn clean_exit_is_not_restarted() {
    use resourcebroker::simnet::NullProg;
    let mut c = build_standard_cluster(2, 103);
    c.settle();
    let mut spawned = 0u32;
    let appl = c.submit(
        c.machines[0],
        JobRequest {
            rsl: r#"(start_script="ok.sh")"#.into(),
            user: "u".into(),
            run: JobRun::Script {
                make: Box::new(move || {
                    spawned += 1;
                    assert!(spawned <= 1, "clean job must not be restarted");
                    Box::new(NullProg)
                }),
                max_restarts: 5,
            },
        },
    );
    let status = c.await_appl(appl, FAR).unwrap();
    assert_eq!(status, ExitStatus::Success);
    assert_eq!(c.world.trace().count("appl.restart"), 0);
}
