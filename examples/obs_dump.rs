//! Run Table 2's reallocation scenario in observability trim — spans
//! traced, metrics sampled — and dump everything `rbtrace` consumes.
//!
//! Run with: `cargo run --example obs_dump -- /tmp/obs`
//! Writes `<dir>/trace.txt` (rendered trace with span events) and
//! `<dir>/metrics.json` (the sampled metrics registry). Then:
//!
//! ```text
//! rbtrace spans    /tmp/obs/trace.txt
//! rbtrace latency  /tmp/obs/trace.txt
//! rbtrace export   --metrics /tmp/obs/metrics.json -o /tmp/obs/chrome.json /tmp/obs/trace.txt
//! rbtrace validate /tmp/obs/chrome.json      # then load it in ui.perfetto.dev
//! ```

use resourcebroker::proto::CommandSpec;
use resourcebroker::workloads::table2::prime_with_realloc_traced;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&dir).expect("create output dir");

    // The paper's headline mechanism: rsh' onto machines an adaptive
    // Calypso job holds, forcing the broker to reclaim one (~1 s).
    let (outcome, trace, metrics) =
        prime_with_realloc_traced(7, CommandSpec::Loop { cpu_millis: 5_300 });

    let trace_path = format!("{dir}/trace.txt");
    let metrics_path = format!("{dir}/metrics.json");
    std::fs::write(&trace_path, &trace).expect("write trace");
    std::fs::write(&metrics_path, metrics.render()).expect("write metrics");
    eprintln!(
        "reallocation took {:.3} simulated seconds; wrote {trace_path} and {metrics_path}",
        outcome.elapsed_secs
    );
}
