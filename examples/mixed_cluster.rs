//! Multiple adaptive jobs from *different programming systems* competing
//! for one cluster — the capability no prior resource manager had.
//!
//! A Calypso job and a PLinda job (default redirect path) and a PVM job
//! (external-module path) share eight machines; sequential jobs arrive in
//! the middle and get machines reallocated to them just in time.
//!
//! Run with: `cargo run --example mixed_cluster`

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{
    CalypsoConfig, CalypsoMaster, PlindaConfig, PlindaServer, PvmMaster, PvmMasterConfig, TaskBag,
};
use resourcebroker::proto::CommandSpec;
use resourcebroker::simcore::{Duration, SimTime};

fn main() {
    let mut cluster = build_standard_cluster(8, 2026);
    cluster.settle();

    // An adaptive Calypso job that will soak up whatever it can get.
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "+(count>=6)(adaptive=1)".into(),
            user: "carol".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 1_500 },
                desired_workers: 6,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    cluster.world.run_until(SimTime(20_000_000));

    // A PLinda bag-of-tasks job wants two workers.
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "pat".into(),
            run: JobRun::Root(Box::new(PlindaServer::new(PlindaConfig {
                tasks: vec![800; 24],
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                persistent: false,
            }))),
        },
    );
    cluster.world.run_until(SimTime(40_000_000));

    // A PVM job (module path) wants two more.
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: r#"+(count>=2)(adaptive=1)(module="pvm")"#.into(),
            user: "vik".into(),
            run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                initial_hosts: vec!["anylinux".into()],
                ..Default::default()
            }))),
        },
    );
    cluster.world.run_until(SimTime(70_000_000));

    // A burst of sequential work arrives.
    let mut seq = Vec::new();
    for i in 0..2 {
        let appl = cluster.submit(
            cluster.machines[0],
            JobRequest {
                rsl: "(adaptive=0)".into(),
                user: format!("seq{i}"),
                run: JobRun::Remote {
                    host: "anylinux".into(),
                    cmd: CommandSpec::Loop { cpu_millis: 4_000 },
                },
            },
        );
        seq.push(appl);
        cluster
            .world
            .run_until(cluster.world.now() + Duration::from_secs(2));
    }
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(60));

    println!("after the dust settles:");
    println!(
        "  calypso workers: {}",
        cluster.world.procs_named("calypso-worker").len()
    );
    println!(
        "  plinda workers : {}",
        cluster.world.procs_named("plinda-worker").len()
    );
    println!(
        "  pvm slaves     : {}",
        cluster.world.procs_named("pvmd").len()
    );
    for (i, appl) in seq.iter().enumerate() {
        println!(
            "  sequential #{i}  : {:?}",
            cluster.world.exit_status(*appl)
        );
    }
    println!(
        "\nbroker decisions: {} grants, {} reclaims, {} offers",
        cluster.world.trace().count("broker.grant"),
        cluster.world.trace().count("broker.reclaim"),
        cluster.world.trace().count("broker.offer"),
    );
    println!("machine allocation (time with an application process, first 70s+):");
    for &m in &cluster.machines {
        let host = cluster.world.hostname(m).to_string();
        let alloc = cluster.world.allocated_time(m).as_secs_f64();
        let total = cluster.world.now().as_secs_f64();
        println!("  {host}: {:.1}% allocated", 100.0 * alloc / total);
    }
}
