//! The social contract for private workstations: an adaptive job may use a
//! colleague's machine overnight, but the moment the owner touches the
//! keyboard the broker evicts it — and re-offers the machine when the
//! owner leaves again.
//!
//! Run with: `cargo run --example owner_workstation`

use resourcebroker::broker::{build_cluster, ClusterOptions, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, TaskBag};
use resourcebroker::proto::MachineAttrs;
use resourcebroker::simcore::Duration;

fn main() {
    let mut opts = ClusterOptions {
        seed: 9,
        ..Default::default()
    };
    opts.machines = vec![
        MachineAttrs::public_linux("n00"),
        MachineAttrs::public_linux("n01"),
        MachineAttrs::private_linux("bob-desk", "bob"),
        MachineAttrs::private_linux("eve-desk", "eve"),
    ];
    let mut cluster = build_cluster(opts);
    // It's evening: both owners are at their desks.
    let bob_desk = cluster.world.machine_by_host("bob-desk").unwrap();
    let eve_desk = cluster.world.machine_by_host("eve-desk").unwrap();
    cluster.world.set_owner_present(bob_desk, true);
    cluster.world.set_owner_present(eve_desk, true);
    cluster.settle();

    // An adaptive job that would happily use all four machines.
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "+(count>=3)(adaptive=1)".into(),
            user: "carol".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 1_000 },
                desired_workers: 3,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(20));
    report(
        &cluster,
        "evening (owners present): job limited to public machines",
    );

    // Bob goes home; his machine is offered to the hungry job.
    cluster.world.set_owner_present(bob_desk, false);
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(30));
    report(&cluster, "night (bob left): job expands onto bob-desk");

    // Bob comes in early: daemons notice keyboard activity; the worker is
    // evicted with SIGTERM + grace, and bob-desk is held for its owner.
    cluster.world.set_owner_present(bob_desk, true);
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(20));
    report(
        &cluster,
        "morning (bob back): worker evicted within seconds",
    );

    println!("\neviction trail:");
    for event in cluster.world.trace().events() {
        if event.topic.starts_with("broker.evict")
            || event.topic.starts_with("broker.offer")
            || event.topic == "calypso.worker.retreat"
        {
            println!(
                "  {:>12}  {:<22} {}",
                event.at.to_string(),
                event.topic,
                event.detail
            );
        }
    }
}

fn report(cluster: &resourcebroker::broker::Cluster, label: &str) {
    let mut hosts: Vec<String> = cluster
        .world
        .procs_named("calypso-worker")
        .iter()
        .map(|&w| {
            cluster
                .world
                .hostname(cluster.world.proc_machine(w).unwrap())
                .to_string()
        })
        .collect();
    hosts.sort();
    println!("{label}\n  workers on: {hosts:?}");
}
