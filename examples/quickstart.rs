//! Quickstart: boot a broker-managed cluster, run a sequential program on
//! a just-in-time machine, then grow an adaptive Calypso job across the
//! rest of the cluster.
//!
//! Run with: `cargo run --example quickstart`

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, TaskBag};
use resourcebroker::proto::CommandSpec;
use resourcebroker::simcore::{Duration, SimTime};

fn main() {
    // Four public Linux workstations; the broker boots on n00 and spawns a
    // monitoring daemon on every machine.
    let mut cluster = build_standard_cluster(4, 42);
    cluster.settle();
    println!(
        "cluster up: {} machines, {} daemons\n",
        cluster.machines.len(),
        cluster.world.procs_named("rb-daemon").len()
    );

    // 1. Remote execution with a symbolic host: "run this anywhere".
    let appl = cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "alice".into(),
            run: JobRun::Remote {
                host: "anylinux".into(),
                cmd: CommandSpec::Loop { cpu_millis: 2_000 },
            },
        },
    );
    let t0 = cluster.world.now();
    let status = cluster.await_appl(appl, SimTime(600_000_000)).unwrap();
    println!(
        "sequential job on a broker-chosen machine: {status} after {:.2}s\n",
        (cluster.world.now() - t0).as_secs_f64()
    );

    // 2. An adaptive Calypso job that wants three workers; each worker is
    //    placed by the broker when the job's runtime asks for `anylinux`.
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "+(count>=3)(adaptive=1)".into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Finite(vec![1_000; 12]),
                desired_workers: 3,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(30));

    println!("trace highlights:");
    for event in cluster.world.trace().events() {
        if event.topic.starts_with("broker.grant")
            || event.topic.starts_with("calypso.worker.joined")
            || event.topic == "calypso.complete"
        {
            println!(
                "  {:>12}  {:<24} {}",
                event.at.to_string(),
                event.topic,
                event.detail
            );
        }
    }
}
