//! Run the sharded calypso and realloc workloads with happens-before
//! trace records on (`shard.ev` / `shard.window`) and dump the rendered
//! traces for the `rbrace hb` race checker.
//!
//! Run with: `cargo run --example hb_dump -- /tmp/hb [shards]`
//! (writes `<dir>/calypso_hb.trace` and `<dir>/realloc_hb.trace`;
//! `shards` defaults to 4). Then check them:
//! `cargo run -p rb-analyze --bin rbrace -- hb /tmp/hb/calypso_hb.trace`

use resourcebroker::broker::DefaultPolicy;
use resourcebroker::proto::CommandSpec;
use resourcebroker::simcore::{QueueKind, SimTime};
use resourcebroker::workloads::scenarios::{
    await_calypso_workers, broker_testbed_hb, submit_endless_calypso,
};
use resourcebroker::workloads::table2::prime_with_realloc_hb;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args.next().unwrap_or_else(|| {
        eprintln!("usage: hb_dump <outdir> [shards]");
        std::process::exit(2);
    });
    let shards: usize = args
        .next()
        .map(|s| s.parse().expect("shards must be a number"))
        .unwrap_or(4);
    std::fs::create_dir_all(&dir).expect("create output dir");

    // The busy broker scenario the sharded-equivalence suite replays:
    // an adaptive calypso job grabs the cluster and keeps computing.
    let mut c = broker_testbed_hb(
        4,
        42,
        Box::new(DefaultPolicy::default()),
        QueueKind::Heap,
        shards,
    );
    submit_endless_calypso(&mut c, 4, 500);
    let limit = SimTime(c.world.now().as_micros() + 60_000_000);
    await_calypso_workers(&mut c, 4, limit);
    c.world.run_until(limit);
    let calypso = c.world.render_trace_with_stats();
    write(&dir, "calypso_hb.trace", &calypso);

    // Table 2's reallocation workload: the broker clears an occupied
    // machine for a sequential job while calypso adapts around it.
    let (_, c) = prime_with_realloc_hb(
        7,
        CommandSpec::Loop { cpu_millis: 3_000 },
        QueueKind::Heap,
        shards,
    );
    let realloc = c.world.render_trace_with_stats();
    write(&dir, "realloc_hb.trace", &realloc);
}

fn write(dir: &str, name: &str, contents: &str) {
    let path = format!("{dir}/{name}");
    std::fs::write(&path, contents).expect("write trace dump");
    eprintln!("wrote {} lines to {path}", contents.lines().count());
}
