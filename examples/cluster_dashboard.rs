//! An operator's view: run a mixed workload and poll `rbstat` once a
//! minute, printing the cluster status the way a user at a terminal would
//! see it ("users communicate with ResourceBroker to query machine
//! availability [and] the status of queued jobs").
//!
//! Run with: `cargo run --example cluster_dashboard`

use resourcebroker::broker::{build_standard_cluster, query_status, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, TaskBag};
use resourcebroker::proto::CommandSpec;
use resourcebroker::simcore::Duration;

fn main() {
    let mut cluster = build_standard_cluster(5, 77);
    cluster.settle();

    // An adaptive background job...
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "+(count>=4)(adaptive=1)".into(),
            user: "carol".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Endless { cpu_millis: 1_200 },
                desired_workers: 4,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    // ...and a stream of batch jobs that force reallocation and queueing.
    for i in 0..4 {
        let at = cluster.world.now() + Duration::from_secs(30 + i * 45);
        let broker = cluster.broker;
        let modules = cluster.modules.clone();
        let home = cluster.machines[0];
        cluster.world.schedule(at, move |w| {
            resourcebroker::broker::submit_job(
                w,
                home,
                broker,
                &modules,
                JobRequest {
                    rsl: "(adaptive=0)".into(),
                    user: format!("batch{i}"),
                    run: JobRun::Remote {
                        host: "anylinux".into(),
                        cmd: CommandSpec::Loop { cpu_millis: 60_000 },
                    },
                },
            );
        });
    }

    for minute in 1..=4 {
        cluster
            .world
            .run_until(cluster.world.now() + Duration::from_secs(60));
        println!("── rbstat @ minute {minute} ───────────────────────────────");
        for line in query_status(&mut cluster) {
            println!("  {line}");
        }
        println!();
    }
    println!(
        "broker decisions so far: {} grants / {} reclaims / {} offers / {} queued",
        cluster.world.trace().count("broker.grant"),
        cluster.world.trace().count("broker.reclaim"),
        cluster.world.trace().count("broker.offer"),
        cluster.world.trace().count("broker.queued"),
    );
}
