//! Run Table 2's reallocation scenario with the self-profiler armed —
//! spans traced, metrics sampled, per-behavior dispatch cost measured —
//! and dump everything the latency-attribution pipeline consumes.
//!
//! Run with: `cargo run --example prof_dump -- /tmp/prof`
//! Writes `<dir>/trace.txt` (rendered trace), `<dir>/metrics.json`
//! (sampled registry, including the flushed `prof.*` series) and
//! `<dir>/profile.json` (the profiler's own summary doc). Then:
//!
//! ```text
//! rbtrace critpath /tmp/prof/trace.txt
//! rbtrace critpath --format json /tmp/prof/trace.txt
//! rbtrace critpath --flows /tmp/prof/flows.json /tmp/prof/trace.txt
//! rbtrace validate /tmp/prof/flows.json       # then load it in ui.perfetto.dev
//! rbtrace timeline --metrics /tmp/prof/metrics.json /tmp/prof/trace.txt
//! ```

use resourcebroker::proto::CommandSpec;
use resourcebroker::workloads::table2::prime_with_realloc_profiled;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&dir).expect("create output dir");

    // The paper's headline mechanism: rsh' onto machines an adaptive
    // Calypso job holds, forcing the broker to reclaim one (~1 s). The
    // profiler rides along and must not perturb the simulated outcome.
    let (outcome, trace, metrics, profile) =
        prime_with_realloc_profiled(7, CommandSpec::Loop { cpu_millis: 5_300 });

    let trace_path = format!("{dir}/trace.txt");
    let metrics_path = format!("{dir}/metrics.json");
    let profile_path = format!("{dir}/profile.json");
    std::fs::write(&trace_path, &trace).expect("write trace");
    std::fs::write(&metrics_path, metrics.render()).expect("write metrics");
    std::fs::write(&profile_path, profile.render()).expect("write profile");
    eprintln!(
        "reallocation took {:.3} simulated seconds; wrote {trace_path}, {metrics_path} and {profile_path}",
        outcome.elapsed_secs
    );
}
