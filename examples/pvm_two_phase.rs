//! The paper's Figure 6 walk-through: an unmodified PVM program grows onto
//! broker-chosen machines through the two-phase external-module protocol.
//!
//! Phase I: the master pvmd's `rsh anylinux` is intercepted and *failed*
//! while the broker allocates a machine. Phase II: the `pvm_grow` module
//! coerces the master — through an ordinary scripted console — to re-issue
//! the `rsh` with the real host name, which then proceeds under the
//! sub-`appl`'s supervision. The pvmd never knows a broker exists.
//!
//! Run with: `cargo run --example pvm_two_phase`

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{PvmMaster, PvmMasterConfig};
use resourcebroker::proto::{CommandSpec, ConsoleCmd, Payload, PvmMsg};
use resourcebroker::simcore::Duration;
use resourcebroker::simnet::ProcEnv;

fn main() {
    let mut cluster = build_standard_cluster(4, 7);
    cluster.settle();

    // Submit the PVM job with the module option, exactly like
    //   $ appl pvm --(module="pvm")
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: r#"+(count>=2)(adaptive=1)(module="pvm")"#.into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(PvmMaster::new(PvmMasterConfig {
                // The user's hostfile contains only the symbolic name.
                initial_hosts: vec!["anylinux".into()],
                default_task_millis: 500,
                ..Default::default()
            }))),
        },
    );
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(10));

    // Grow once more from a user console, then run tasks.
    let behavior = cluster
        .world
        .build_program(&CommandSpec::PvmConsole {
            script: vec![ConsoleCmd::Add("anylinux".into()), ConsoleCmd::Quit],
        })
        .expect("pvm console installed");
    cluster
        .world
        .spawn_user(cluster.machines[0], behavior, ProcEnv::user_broker("alice"));
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(10));

    let master = cluster.world.procs_named("pvm-master")[0];
    cluster.world.send_from_harness(
        master,
        Payload::Pvm(PvmMsg::SpawnTasks {
            n: 6,
            cpu_millis: 400,
        }),
    );
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(10));

    println!(
        "virtual machine size: {} slave pvmds",
        cluster.world.procs_named("pvmd").len()
    );
    println!(
        "tasks completed: {}\n",
        cluster.world.trace().count("pvm.task.done")
    );

    println!("two-phase protocol, as it happened:");
    for event in cluster.world.trace().events() {
        let interesting = [
            "rsh.intercept",
            "appl.module.phase1",
            "broker.grant",
            "module.pvm.grow",
            "pvm.add.attempt",
            "appl.module.phase2",
            "subappl.spawn",
            "pvm.slave.accepted",
            "pvm.add.failed",
        ];
        if interesting.contains(&event.topic.as_str()) {
            println!(
                "  {:>12}  {:<22} {}",
                event.at.to_string(),
                event.topic,
                event.detail
            );
        }
    }
}
