//! Run a short mixed workload and dump the full event trace in the
//! `TraceRecorder::render` format that `rblint` consumes.
//!
//! Run with: `cargo run --example dump_trace -- /tmp/trace.txt`
//! (no argument prints the trace to stdout). Then lint it:
//! `cargo run -p rb-analyze --bin rblint -- /tmp/trace.txt`

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{CalypsoConfig, CalypsoMaster, TaskBag};
use resourcebroker::proto::CommandSpec;
use resourcebroker::simcore::Duration;

fn main() {
    let mut cluster = build_standard_cluster(3, 7);
    cluster.settle();

    // A sequential job and an adaptive job compete for the same machines,
    // so the dump exercises the grant/reclaim/release vocabulary.
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "+(count>=2)(adaptive=1)".into(),
            user: "alice".into(),
            run: JobRun::Root(Box::new(CalypsoMaster::new(CalypsoConfig {
                tasks: TaskBag::Finite(vec![1_500; 8]),
                desired_workers: 2,
                hostfile: vec!["anylinux".into()],
                task_timeout: None,
            }))),
        },
    );
    cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "bob".into(),
            run: JobRun::Remote {
                host: "anylinux".into(),
                cmd: CommandSpec::Loop { cpu_millis: 3_000 },
            },
        },
    );
    cluster
        .world
        .run_until(cluster.world.now() + Duration::from_secs(60));

    // Include the `# rb-trace v1 ...` header carrying the kernel's queue
    // counters; rblint echoes it and skips it during parsing.
    let rendered = cluster.world.render_trace_with_stats();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write trace dump");
            eprintln!(
                "wrote {} events to {path}",
                cluster.world.trace().events().len()
            );
        }
        None => print!("{rendered}"),
    }
}
