//! A distributed `make` under ResourceBroker: each recipe is launched over
//! `rsh anylinux`, so independent compilation steps spread across machines
//! chosen just in time — the paper's "parallelizable tasks such as make"
//! served by the default redirect path.
//!
//! Run with: `cargo run --example distributed_make`

use resourcebroker::broker::{build_standard_cluster, JobRequest, JobRun};
use resourcebroker::parsys::{MakeRule, Pmake, PmakeConfig};
use resourcebroker::simcore::SimTime;

fn main() {
    let mut cluster = build_standard_cluster(5, 11);
    cluster.settle();

    // A small project: four independent objects, two libraries, one link.
    let rules = vec![
        MakeRule::new("config.h", &[], 300),
        MakeRule::new("parse.o", &["config.h"], 3_000),
        MakeRule::new("eval.o", &["config.h"], 2_500),
        MakeRule::new("io.o", &["config.h"], 2_000),
        MakeRule::new("main.o", &["config.h"], 1_500),
        MakeRule::new("libcore.a", &["parse.o", "eval.o"], 600),
        MakeRule::new("libio.a", &["io.o"], 400),
        MakeRule::new("app", &["libcore.a", "libio.a", "main.o"], 900),
    ];

    let t0 = cluster.world.now();
    let appl = cluster.submit(
        cluster.machines[0],
        JobRequest {
            rsl: "(adaptive=0)".into(),
            user: "dev".into(),
            run: JobRun::Root(Box::new(Pmake::new(PmakeConfig {
                rules,
                goal: "app".into(),
                jobs: 4,
                hostfile: vec!["anylinux".into()],
            }))),
        },
    );
    let status = cluster.await_appl(appl, SimTime(3_600_000_000)).unwrap();
    println!(
        "build {status} in {:.2} simulated seconds (4-way parallel, broker-placed)\n",
        (cluster.world.now() - t0).as_secs_f64()
    );

    println!("build log:");
    for e in cluster.world.trace().events() {
        if e.topic.starts_with("pmake.") {
            println!("  {:>12}  {:<16} {}", e.at.to_string(), e.topic, e.detail);
        }
    }
}
